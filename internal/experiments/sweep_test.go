package experiments

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/power"
	"repro/internal/schedule"
	"repro/internal/scherr"
	"repro/internal/wfgen"
)

// sweepTestJobs is a small grid: 3 specs × the first algorithms of the
// roster, enough to exercise grouping and ordering.
func sweepTestJobs(algos int) []Job {
	roster := Algorithms()
	var specs []Spec
	for i, sc := range []power.Scenario{power.S1, power.S3, power.S4} {
		specs = append(specs, Spec{
			Family: wfgen.Bacass, N: 40, Cluster: Small, Scenario: sc,
			DeadlineFactor: []float64{1.5, 2, 3}[i], Seed: 42,
		})
	}
	var jobs []Job
	for _, s := range specs {
		for _, a := range roster[:algos] {
			jobs = append(jobs, Job{Spec: s, Algo: a.Name})
		}
	}
	return jobs
}

// stripTiming blanks the non-deterministic elapsed field so record streams
// from different worker counts can be compared for identity.
func stripTiming(recs []SweepRecord) []SweepRecord {
	out := append([]SweepRecord(nil), recs...)
	for i := range out {
		out[i].ElapsedMicros = 0
	}
	return out
}

// TestSweepDeterministicOrder is the worker-pool determinism property: the
// JSONL stream under 8 workers must list the same jobs with the same costs
// in the same order as under 1 worker (run with -race in CI).
func TestSweepDeterministicOrder(t *testing.T) {
	jobs := sweepTestJobs(5)
	run := func(workers int) ([]SweepRecord, []Result) {
		var buf bytes.Buffer
		results, err := Sweep(context.Background(), jobs, Algorithms(), &buf, SweepOptions{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		recs, err := ReadSweepRecords(&buf)
		if err != nil {
			t.Fatal(err)
		}
		return recs, results
	}
	recs1, res1 := run(1)
	recs8, res8 := run(8)
	if len(recs1) != len(jobs) || len(recs8) != len(jobs) {
		t.Fatalf("record counts %d/%d, want %d", len(recs1), len(recs8), len(jobs))
	}
	s1, s8 := stripTiming(recs1), stripTiming(recs8)
	for i := range s1 {
		if s1[i] != s8[i] {
			t.Fatalf("record %d diverges across worker counts:\n1: %+v\n8: %+v", i, s1[i], s8[i])
		}
	}
	// Records must follow grid order, and results must match them.
	for i, rec := range recs1 {
		if rec.Algo != jobs[i].Algo || rec.Scenario != jobs[i].Spec.Scenario.String() {
			t.Fatalf("record %d out of grid order: %+v vs job %+v", i, rec, jobs[i])
		}
	}
	if len(res1) != len(res8) {
		t.Fatalf("result counts differ: %d vs %d", len(res1), len(res8))
	}
	for i := range res1 {
		if res1[i].Spec != res8[i].Spec || res1[i].Algo != res8[i].Algo || res1[i].Cost != res8[i].Cost {
			t.Fatalf("result %d differs across worker counts", i)
		}
	}
}

func TestSweepMatchesSequentialRunner(t *testing.T) {
	// The sweep's costs must agree with the original Run path.
	jobs := sweepTestJobs(4)
	var buf bytes.Buffer
	swept, err := Sweep(context.Background(), jobs, Algorithms(), &buf, SweepOptions{Workers: 3})
	if err != nil {
		t.Fatal(err)
	}
	specs := []Spec{jobs[0].Spec, jobs[4].Spec, jobs[8].Spec}
	legacy, err := Run(context.Background(), specs, Algorithms()[:4], 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	costs := map[string]int64{}
	for _, r := range legacy {
		costs[jobKey(r.Spec, r.Algo)] = r.Cost
	}
	if len(swept) != len(legacy) {
		t.Fatalf("%d swept results, %d legacy", len(swept), len(legacy))
	}
	for _, r := range swept {
		want, ok := costs[jobKey(r.Spec, r.Algo)]
		if !ok || r.Cost != want {
			t.Errorf("cost mismatch for %s/%s: sweep %d, legacy %d (found %v)", r.Spec, r.Algo, r.Cost, want, ok)
		}
	}
}

func TestSweepIsolatesPanicsAndErrors(t *testing.T) {
	jobs := sweepTestJobs(1) // 3 ASAP jobs
	roster := []Algorithm{
		{Name: BaselineName, Run: func(ctx context.Context, in *Instance) (*schedule.Schedule, error) {
			panic("boom")
		}},
	}
	var buf bytes.Buffer
	results, err := Sweep(context.Background(), jobs, roster, &buf, SweepOptions{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 0 {
		t.Fatalf("panicking algorithm yielded %d results", len(results))
	}
	recs, err := ReadSweepRecords(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != len(jobs) {
		t.Fatalf("%d records, want %d", len(recs), len(jobs))
	}
	for i, rec := range recs {
		if !strings.Contains(rec.Err, "panic: boom") {
			t.Errorf("record %d err = %q, want panic", i, rec.Err)
		}
	}
	// Unknown algorithms are reported in-band too.
	var buf2 bytes.Buffer
	if _, err := Sweep(context.Background(), []Job{{Spec: jobs[0].Spec, Algo: "nope"}}, Algorithms(), &buf2, SweepOptions{}); err != nil {
		t.Fatal(err)
	}
	recs2, _ := ReadSweepRecords(&buf2)
	if len(recs2) != 1 || !strings.Contains(recs2[0].Err, "unknown algorithm") {
		t.Errorf("unknown algorithm records = %+v", recs2)
	}
}

func TestSweepTimeout(t *testing.T) {
	jobs := sweepTestJobs(1)[:1]
	roster := []Algorithm{
		{Name: BaselineName, Run: func(ctx context.Context, in *Instance) (*schedule.Schedule, error) {
			// A ctx-honoring slow job, like the real roster under a
			// -job-timeout deadline.
			select {
			case <-time.After(2 * time.Second):
				return nil, nil
			case <-ctx.Done():
				return nil, scherr.Canceled(ctx.Err())
			}
		}},
	}
	var buf bytes.Buffer
	start := time.Now()
	results, err := Sweep(context.Background(), jobs, roster, &buf, SweepOptions{Workers: 1, Timeout: 20 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if took := time.Since(start); took > time.Second {
		t.Fatalf("timeout did not fire: sweep took %s", took)
	}
	if len(results) != 0 {
		t.Fatal("timed-out job produced a result")
	}
	recs, _ := ReadSweepRecords(&buf)
	if len(recs) != 1 || !strings.Contains(recs[0].Err, "timeout") {
		t.Errorf("records = %+v, want one timeout", recs)
	}
}

func TestSweepResume(t *testing.T) {
	jobs := sweepTestJobs(3)
	var full bytes.Buffer
	if _, err := Sweep(context.Background(), jobs, Algorithms(), &full, SweepOptions{Workers: 4}); err != nil {
		t.Fatal(err)
	}
	recs, err := ReadSweepRecords(&full)
	if err != nil {
		t.Fatal(err)
	}
	// Pretend the first 4 jobs finished before an interruption.
	done := SweepDoneKeys(recs[:4])
	if len(done) != 4 {
		t.Fatalf("done keys = %d, want 4", len(done))
	}
	var rest bytes.Buffer
	if _, err := Sweep(context.Background(), jobs, Algorithms(), &rest, SweepOptions{Workers: 4, Skip: done}); err != nil {
		t.Fatal(err)
	}
	restRecs, err := ReadSweepRecords(&rest)
	if err != nil {
		t.Fatal(err)
	}
	if len(restRecs) != len(jobs)-4 {
		t.Fatalf("resumed sweep emitted %d records, want %d", len(restRecs), len(jobs)-4)
	}
	want := stripTiming(recs[4:])
	got := stripTiming(restRecs)
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("resumed record %d = %+v, want %+v", i, got[i], want[i])
		}
	}
	// The stitched stream (prefix + resumed tail) must round-trip into the
	// same results as the uninterrupted run.
	stitched, err := SweepResults(append(append([]SweepRecord(nil), recs[:4]...), restRecs...))
	if err != nil {
		t.Fatal(err)
	}
	fullRes, err := SweepResults(recs)
	if err != nil {
		t.Fatal(err)
	}
	if len(stitched) != len(fullRes) {
		t.Fatalf("stitched %d results, want %d", len(stitched), len(fullRes))
	}
	for i := range stitched {
		if stitched[i].Spec != fullRes[i].Spec || stitched[i].Cost != fullRes[i].Cost {
			t.Fatalf("stitched result %d diverges", i)
		}
	}
}

func TestReadSweepRecordsToleratesTornTail(t *testing.T) {
	jobs := sweepTestJobs(2)
	var buf bytes.Buffer
	if _, err := Sweep(context.Background(), jobs, Algorithms(), &buf, SweepOptions{Workers: 2}); err != nil {
		t.Fatal(err)
	}
	full := buf.String()
	lines := strings.SplitAfter(strings.TrimSuffix(full, "\n"), "\n")
	// Tear the last record in half, as a killed process would.
	torn := strings.Join(lines[:len(lines)-1], "") + lines[len(lines)-1][:10]
	recs, err := ReadSweepRecords(strings.NewReader(torn))
	if err != nil {
		t.Fatalf("torn tail not tolerated: %v", err)
	}
	if len(recs) != len(jobs)-1 {
		t.Fatalf("got %d records from torn file, want %d", len(recs), len(jobs)-1)
	}
	// Corruption before the end must still be rejected.
	bad := "{garbage\n" + full
	if _, err := ReadSweepRecords(strings.NewReader(bad)); err == nil {
		t.Error("mid-file corruption accepted")
	}
}

func TestGridShape(t *testing.T) {
	names := []string{"ASAP", "pressWR-LS"}
	jobs := Grid(100, 42, 2, names)
	specs := Corpus(100, 42)
	if want := 2 * len(specs) * len(names); len(jobs) != want {
		t.Fatalf("grid has %d jobs, want %d", len(jobs), want)
	}
	// Replicate 0 keeps the base seed; replicate 1 derives a new one, and
	// both halves enumerate the same spec shapes in the same order.
	half := len(jobs) / 2
	if jobs[0].Spec.Seed != 42 {
		t.Errorf("replicate 0 seed = %d", jobs[0].Spec.Seed)
	}
	if jobs[half].Spec.Seed == 42 {
		t.Error("replicate 1 reused the base seed")
	}
	if ReplicateSeed(42, 1) != jobs[half].Spec.Seed {
		t.Error("replicate seed not reproducible")
	}
	keys := map[string]bool{}
	for _, j := range jobs {
		if keys[j.Key()] {
			t.Fatalf("duplicate job key %s", j.Key())
		}
		keys[j.Key()] = true
	}
}

// ExampleSweep runs a two-job sweep and shows the streamed JSONL schema.
func ExampleSweep() {
	spec := Spec{Family: wfgen.Bacass, N: 30, Cluster: Small, Scenario: power.S1, DeadlineFactor: 2, Seed: 7}
	jobs := []Job{{Spec: spec, Algo: "ASAP"}, {Spec: spec, Algo: "pressWR-LS"}}
	var buf bytes.Buffer
	results, err := Sweep(context.Background(), jobs, Algorithms(), &buf, SweepOptions{Workers: 2})
	if err != nil {
		fmt.Println(err)
		return
	}
	recs, _ := ReadSweepRecords(&buf)
	fmt.Println("jobs:", len(jobs), "records:", len(recs))
	fmt.Println("first algo:", recs[0].Algo)
	fmt.Println("carbon-aware beats baseline:", results[1].Cost < results[0].Cost)
	// Output:
	// jobs: 2 records: 2
	// first algo: ASAP
	// carbon-aware beats baseline: true
}

// TestSweepTimeoutLeaksNoGoroutines pins the fix for the old watchdog
// design, where a timed-out job's goroutine kept running to completion
// unobserved. Timeouts are now context deadlines executed synchronously on
// the worker, so after Sweep returns no scheduling goroutine survives.
func TestSweepTimeoutLeaksNoGoroutines(t *testing.T) {
	jobs := sweepTestJobs(1) // 3 jobs
	roster := []Algorithm{
		{Name: BaselineName, Run: func(ctx context.Context, in *Instance) (*schedule.Schedule, error) {
			select {
			case <-time.After(time.Minute): // would leak for a minute under the old design
				return nil, nil
			case <-ctx.Done():
				return nil, scherr.Canceled(ctx.Err())
			}
		}},
	}
	before := runtime.NumGoroutine()
	var buf bytes.Buffer
	if _, err := Sweep(context.Background(), jobs, roster, &buf, SweepOptions{Workers: 2, Timeout: 10 * time.Millisecond}); err != nil {
		t.Fatal(err)
	}
	// Give the pool's own goroutines a moment to unwind.
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if after := runtime.NumGoroutine(); after > before {
		t.Errorf("goroutines grew from %d to %d after a timed-out sweep", before, after)
	}
	recs, _ := ReadSweepRecords(&buf)
	if len(recs) != len(jobs) {
		t.Fatalf("%d records, want %d", len(recs), len(jobs))
	}
	for i, rec := range recs {
		if !strings.Contains(rec.Err, "timeout") {
			t.Errorf("record %d err = %q, want timeout", i, rec.Err)
		}
	}
}

// TestSweepCancellation: canceling the sweep context mid-grid stops the
// sweep promptly, returns a context.Canceled-satisfying error, and leaves
// the JSONL stream a clean in-order prefix that -resume can extend.
func TestSweepCancellation(t *testing.T) {
	jobs := sweepTestJobs(17) // full roster × 3 specs
	ctx, cancel := context.WithCancel(context.Background())
	release := make(chan struct{})
	var once sync.Once
	roster := Algorithms()
	// Wrap the first algorithm so the sweep blocks until we cancel.
	orig := roster[0].Run
	roster[0].Run = func(ctx context.Context, in *Instance) (*schedule.Schedule, error) {
		once.Do(func() { cancel(); close(release) })
		<-release
		return orig(ctx, in)
	}
	var buf bytes.Buffer
	_, err := Sweep(ctx, jobs, roster, &buf, SweepOptions{Workers: 2})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled sweep returned err = %v, want context.Canceled", err)
	}
	if !errors.Is(err, scherr.ErrCanceled) {
		t.Fatalf("canceled sweep err = %v, want scherr.ErrCanceled too", err)
	}
	recs, rerr := ReadSweepRecords(&buf)
	if rerr != nil {
		t.Fatalf("canceled sweep left a corrupt stream: %v", rerr)
	}
	if len(recs) >= len(jobs) {
		t.Fatalf("canceled sweep completed all %d jobs", len(jobs))
	}
	// The emitted records must be the grid prefix, in order.
	for i, rec := range recs {
		if rec.Algo != jobs[i].Algo {
			t.Fatalf("record %d out of grid order after cancel: %q vs %q", i, rec.Algo, jobs[i].Algo)
		}
	}
	// Resume must pick up exactly the missing jobs.
	skip := SweepDoneKeys(recs)
	var rest bytes.Buffer
	if _, err := Sweep(context.Background(), jobs, Algorithms(), &rest, SweepOptions{Workers: 2, Skip: skip}); err != nil {
		t.Fatal(err)
	}
	restRecs, err := ReadSweepRecords(&rest)
	if err != nil {
		t.Fatal(err)
	}
	ok := 0
	for _, rec := range recs {
		if rec.Err == "" {
			ok++
		}
	}
	if got, want := ok+len(restRecs), len(jobs); got != want {
		t.Fatalf("prefix (%d ok) + resumed (%d) = %d records, want %d", ok, len(restRecs), got, want)
	}
}
