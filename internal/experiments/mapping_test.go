package experiments

import (
	"bytes"
	"context"
	"strings"
	"testing"

	"repro/internal/power"
	"repro/internal/wfgen"
)

// antiCorrelatedSpecs is the mapping acceptance family: the anti-correlated
// 2-zone scenario cells (zone 1 runs the scenario one position after zone
// 0) across all four workflow families.
func antiCorrelatedSpecs() []Spec {
	var specs []Spec
	for _, fam := range wfgen.Families() {
		for _, n := range []int{40, 80} {
			for _, sc := range []power.Scenario{power.S1, power.S2} {
				for _, df := range []float64{2, 3} {
					specs = append(specs, Spec{
						Family: fam, N: n, Cluster: Small, Scenario: sc,
						DeadlineFactor: df, Seed: 42, Zones: 2,
					})
				}
			}
		}
	}
	return specs
}

// TestMapSearchNeverWorseOnMultiZoneFamily is the acceptance criterion of
// the mapping layer: on the anti-correlated multi-zone sweep family,
// map-search carbon must be ≤ the fixed-mapping carbon on every instance
// and strictly lower on at least one — and the improvement must be
// visible in the mapping-ablation table.
func TestMapSearchNeverWorseOnMultiZoneFamily(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-instance acceptance sweep")
	}
	ctx := context.Background()
	algo := fromRegistry("pressWR-LS")
	var results []Result
	strictly := 0
	for _, spec := range antiCorrelatedSpecs() {
		fixedIn, err := BuildInstance(spec)
		if err != nil {
			t.Fatal(err)
		}
		msSpec := spec
		msSpec.Mapping = MapSearch
		msIn, err := BuildInstance(msSpec)
		if err != nil {
			t.Fatal(err)
		}
		fixedCost, err := runBest(ctx, fixedIn, algo)
		if err != nil {
			t.Fatalf("%s: %v", spec, err)
		}
		msCost, err := runBest(ctx, msIn, algo)
		if err != nil {
			t.Fatalf("%s: %v", msSpec, err)
		}
		if msCost > fixedCost {
			t.Errorf("%s: map-search cost %d > fixed %d", spec, msCost, fixedCost)
		}
		if msCost < fixedCost {
			strictly++
		}
		results = append(results,
			Result{Spec: spec, Algo: algo.Name, Cost: fixedCost},
			Result{Spec: msSpec, Algo: algo.Name, Cost: msCost})
	}
	if strictly == 0 {
		t.Error("map-search never strictly beat the fixed mapping on the anti-correlated family")
	}

	// The same facts must be visible in the mapping-ablation output: a
	// map-search row with strict wins and no losses.
	table := MappingTable(results)
	var row []string
	for _, r := range table.Rows {
		if r[0] == MapSearch {
			row = r
		}
	}
	if row == nil {
		t.Fatalf("mapping table has no map-search row:\n%s", table.String())
	}
	if row[5] != "0" {
		t.Errorf("map-search row reports %s worse cells, want 0:\n%s", row[5], table.String())
	}
	if row[4] == "0" {
		t.Errorf("map-search row reports no strictly better cells:\n%s", table.String())
	}
}

// TestMappingGridKeys: mapping cells carry /m<mapping> job keys, the
// fixed mapping keeps the legacy key (so mixed streams resume), and the
// grid nests mappings inside each spec cell.
func TestMappingGridKeys(t *testing.T) {
	mappings := []string{"fixed", "zonegreen", MapSearch}
	jobs := MappingGrid(100, 42, 1, 2, mappings, []string{"ASAP", "pressWR-LS"})
	legacy := MultiZoneGrid(100, 42, 1, 2, []string{"ASAP", "pressWR-LS"})
	if len(jobs) != 3*len(legacy) {
		t.Fatalf("%d jobs, want 3 × %d", len(jobs), len(legacy))
	}
	seen := map[string]bool{}
	for _, j := range jobs {
		key := j.Key()
		if seen[key] {
			t.Fatalf("duplicate job key %q", key)
		}
		seen[key] = true
		switch j.Spec.Mapping {
		case "":
			if strings.Contains(key, "/m") {
				t.Fatalf("fixed-mapping key %q carries a mapping suffix", key)
			}
		default:
			if !strings.Contains(key, "/m"+j.Spec.Mapping+"|") {
				t.Fatalf("key %q missing /m%s suffix", key, j.Spec.Mapping)
			}
		}
	}
	// Every legacy key is present verbatim, so resuming a pre-mapping
	// JSONL stream skips exactly the fixed cells.
	for _, j := range legacy {
		if !seen[j.Key()] {
			t.Fatalf("legacy key %q missing from the mapping grid", j.Key())
		}
	}
}

// TestSweepMappingRecordsRoundTrip: a sweep over mapping jobs streams
// records whose mapping field survives the JSONL round trip and feeds the
// resume skip-set.
func TestSweepMappingRecordsRoundTrip(t *testing.T) {
	// Deadline factor 3: enough slack that the slower zoneenergy mapping
	// stays feasible under the fixed mapping's horizon (a tighter factor
	// records its infeasibility in-band instead, which map-search absorbs
	// but a single-policy cell reports).
	spec := Spec{Family: wfgen.Bacass, N: 30, Cluster: Small, Scenario: power.S1,
		DeadlineFactor: 3, Seed: 7, Zones: 2}
	var jobs []Job
	for _, m := range []string{"", "zoneenergy", MapSearch} {
		sp := spec
		sp.Mapping = m
		jobs = append(jobs, Job{Spec: sp, Algo: "pressWR-LS"})
	}
	var buf bytes.Buffer
	results, err := Sweep(context.Background(), jobs, Algorithms(), &buf, SweepOptions{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(jobs) {
		t.Fatalf("%d results for %d jobs", len(results), len(jobs))
	}
	recs, err := ReadSweepRecords(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	done := SweepDoneKeys(recs)
	for i, j := range jobs {
		if results[i].Spec != j.Spec {
			t.Errorf("result %d spec %v, want %v", i, results[i].Spec, j.Spec)
		}
		if !done[j.Key()] {
			t.Errorf("key %q missing from the resume set", j.Key())
		}
	}
	back, err := SweepResults(recs)
	if err != nil {
		t.Fatal(err)
	}
	for i := range back {
		if back[i].Spec.Mapping != jobs[i].Spec.Mapping {
			t.Errorf("record %d lost its mapping: %q", i, back[i].Spec.Mapping)
		}
	}
	// Unknown mappings in a record are rejected on read.
	bad := strings.Replace(buf.String(), `"mapping":"zoneenergy"`, `"mapping":"bogus"`, 1)
	recs, err = ReadSweepRecords(strings.NewReader(bad))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := SweepResults(recs); err == nil {
		t.Error("bogus mapping record accepted")
	}
}

// TestBuildInstanceMappedPolicies: single-policy specs remap the workflow
// but keep the fixed mapping's horizon and supply, and map-search specs
// materialize one candidate per policy with the fixed instance first.
func TestBuildInstanceMappedPolicies(t *testing.T) {
	base := Spec{Family: wfgen.Eager, N: 40, Cluster: Small, Scenario: power.S2,
		DeadlineFactor: 2, Seed: 5, Zones: 2}
	fixed, err := BuildInstance(base)
	if err != nil {
		t.Fatal(err)
	}
	mapped := base
	mapped.Mapping = "zonegreen"
	in, err := BuildInstance(mapped)
	if err != nil {
		t.Fatal(err)
	}
	if !in.Zones.EqualZoneSet(fixed.Zones) {
		t.Error("mapped spec generated a different supply than the fixed mapping")
	}
	if in.Candidates != nil {
		t.Error("single-policy spec carries candidates")
	}
	ms := base
	ms.Mapping = MapSearch
	msIn, err := BuildInstance(ms)
	if err != nil {
		t.Fatal(err)
	}
	if len(msIn.Candidates) != 5 {
		t.Fatalf("map-search built %d candidates, want 5", len(msIn.Candidates))
	}
	if msIn.Candidates[0].Mapping != "heft" || msIn.Candidates[0].Inst != msIn.Inst {
		t.Error("candidate 0 is not the fixed mapping")
	}
	bogus := base
	bogus.Mapping = "bogus"
	if _, err := BuildInstance(bogus); err == nil {
		t.Error("unknown mapping spec accepted")
	}
}

// TestZoneShiftTable: the per-zone load-shift table reports one row per
// zone with sane shares, and rejects single-zone specs.
func TestZoneShiftTable(t *testing.T) {
	specs := []Spec{
		{Family: wfgen.Atacseq, N: 40, Cluster: Small, Scenario: power.S1, DeadlineFactor: 2, Seed: 42, Zones: 2},
		{Family: wfgen.Methylseq, N: 40, Cluster: Small, Scenario: power.S2, DeadlineFactor: 3, Seed: 42, Zones: 2},
	}
	table, err := ZoneShiftTable(context.Background(), specs, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(table.Rows) != 2 {
		t.Fatalf("%d rows, want one per zone:\n%s", len(table.Rows), table.String())
	}
	for _, row := range table.Rows {
		if len(row) != len(table.Columns) {
			t.Fatalf("row %v vs columns %v", row, table.Columns)
		}
	}
	if _, err := ZoneShiftTable(context.Background(), []Spec{{Family: wfgen.Bacass, N: 30, Cluster: Small,
		Scenario: power.S1, DeadlineFactor: 2, Seed: 1}}, 1); err == nil {
		t.Error("single-zone spec accepted by the zone-shift table")
	}
}
