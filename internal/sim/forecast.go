package sim

import (
	"math"

	"repro/internal/power"
	"repro/internal/rng"
)

// ForecastError perturbs a "true" profile into the forecast a planner
// would have seen, following the forecast-accuracy axis of Wiesner et
// al.'s workload-shifting study: per-interval multiplicative noise whose
// amplitude grows with the lead time (forecasts further in the future are
// worse).
type ForecastError struct {
	// Base is the relative error at lead time zero (e.g. 0.05).
	Base float64
	// Growth is the additional relative error per unit of normalized lead
	// time (interval start / horizon), e.g. 0.2 means the last interval's
	// error amplitude is Base+0.2.
	Growth float64
	// Seed drives the noise.
	Seed uint64
}

// Forecast derives the forecast profile from the true one. Budgets stay
// non-negative; interval boundaries are unchanged (grid forecasts come in
// the same hourly resolution as the actuals).
func (fe ForecastError) Forecast(actual *power.Profile) *power.Profile {
	out := actual.Clone()
	if fe.Base == 0 && fe.Growth == 0 {
		return out
	}
	r := rng.New(rng.Mix(fe.Seed, 0xf03eca57))
	T := float64(actual.T())
	for j := range out.Intervals {
		lead := float64(out.Intervals[j].Start) / T
		amp := fe.Base + fe.Growth*lead
		f := 1 + amp*(2*r.Float64()-1)
		if f < 0 {
			f = 0
		}
		b := int64(math.Round(float64(out.Intervals[j].Budget) * f))
		if b < 0 {
			b = 0
		}
		out.Intervals[j].Budget = b
	}
	return out
}
