package sim

import (
	"testing"

	"repro/internal/power"
	"repro/internal/rng"
)

func forecastTestProfile(t *testing.T, seed uint64) *power.Profile {
	t.Helper()
	prof, err := power.Generate(power.S1, 480, 24, 50, 500, rng.New(seed))
	if err != nil {
		t.Fatal(err)
	}
	return prof
}

// TestForecastZeroNoiseIdentity: with Base = Growth = 0 the forecast is
// the actual profile, interval for interval, for any seed — and the input
// profile is never mutated.
func TestForecastZeroNoiseIdentity(t *testing.T) {
	actual := forecastTestProfile(t, 1)
	for _, seed := range []uint64{0, 1, 99} {
		fc := (ForecastError{Seed: seed}).Forecast(actual)
		if !actual.EqualProfile(fc) {
			t.Errorf("seed %d: zero-noise forecast differs from actuals", seed)
		}
		if fc == actual {
			t.Error("forecast aliases the input profile instead of cloning")
		}
	}
}

// TestForecastNegativeBudgetClamp: with error amplitudes far above 1 the
// multiplicative factor 1 + amp·u would go negative for roughly half the
// draws; the model must clamp it so budgets never go below zero, while
// interval boundaries stay untouched.
func TestForecastNegativeBudgetClamp(t *testing.T) {
	actual := forecastTestProfile(t, 2)
	fe := ForecastError{Base: 5, Growth: 10, Seed: 3}
	fc := fe.Forecast(actual)
	if err := fc.Validate(); err != nil {
		t.Fatalf("clamped forecast invalid: %v", err)
	}
	zeroed := 0
	for j, iv := range fc.Intervals {
		if iv.Budget < 0 {
			t.Fatalf("interval %d: negative budget %d", j, iv.Budget)
		}
		if iv.Budget == 0 {
			zeroed++
		}
		if iv.Start != actual.Intervals[j].Start || iv.End != actual.Intervals[j].End {
			t.Fatalf("interval %d: boundaries moved", j)
		}
	}
	// With amplitude ≥ 5 at every lead time, a negative pre-clamp factor —
	// probability > 1/2 per interval — must have happened at least once in
	// 24 intervals; those intervals surface as budget 0.
	if zeroed == 0 {
		t.Error("no interval was clamped to zero despite amplitude >= 5")
	}
	if zeroed == len(fc.Intervals) {
		t.Error("every interval clamped to zero; noise model degenerate")
	}
}

// TestForecastSeedDeterminism: the same seed reproduces the same forecast
// bit for bit; different seeds perturb differently; and the noise stream
// is independent of the profile pointer identity.
func TestForecastSeedDeterminism(t *testing.T) {
	actual := forecastTestProfile(t, 4)
	fe := ForecastError{Base: 0.2, Growth: 0.4, Seed: 7}
	a := fe.Forecast(actual)
	b := fe.Forecast(actual.Clone())
	if !a.EqualProfile(b) {
		t.Error("same seed produced different forecasts")
	}
	other := ForecastError{Base: 0.2, Growth: 0.4, Seed: 8}.Forecast(actual)
	if a.EqualProfile(other) {
		t.Error("different seeds produced identical forecasts (astronomically unlikely)")
	}
	if a.EqualProfile(actual) {
		t.Error("nonzero noise left the profile untouched (astronomically unlikely)")
	}
	// Growth makes later intervals noisier on average; at minimum the
	// perturbation must touch both halves of the horizon over a few seeds.
	touchedEarly, touchedLate := false, false
	for seed := uint64(0); seed < 8; seed++ {
		fc := ForecastError{Base: 0.2, Growth: 0.4, Seed: seed}.Forecast(actual)
		half := len(actual.Intervals) / 2
		for j := range fc.Intervals {
			if fc.Intervals[j].Budget != actual.Intervals[j].Budget {
				if j < half {
					touchedEarly = true
				} else {
					touchedLate = true
				}
			}
		}
	}
	if !touchedEarly || !touchedLate {
		t.Errorf("noise lopsided: early=%v late=%v", touchedEarly, touchedLate)
	}
}
