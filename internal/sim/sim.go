// Package sim is a discrete-event execution simulator for schedules: it
// "runs" a planned schedule on the platform, node by node, and reports
// what actually happens when reality deviates from the plan.
//
// Two deviations matter in practice and motivate the simulator:
//
//   - task runtimes differ from their estimates (the runtime-prediction
//     literature the paper builds on — Lotaru, Bader et al. — reports
//     double-digit relative errors), and
//   - the realized green power differs from the forecast the schedule was
//     optimized against (the forecast-accuracy axis of Wiesner et al.).
//
// The simulator executes the plan with a right-shift repair policy: every
// node starts at the later of its planned start and the completion of its
// predecessors (plus its processor's previous node), exactly how a
// workflow engine with a static plan behaves. It reports the realized
// makespan, the realized carbon cost under the true profile, and whether
// the deadline was kept. On undisturbed inputs the simulation reproduces
// the planned schedule and the static cost exactly, which doubles as an
// independent check of the Appendix A.1 cost sweep.
package sim

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/ceg"
	"repro/internal/power"
	"repro/internal/rng"
	"repro/internal/schedule"
)

// Noise perturbs planned durations.
type Noise struct {
	// RelStdDev is the relative standard deviation of the multiplicative
	// log-normal-ish runtime noise (0 = exact runtimes). A task with
	// planned duration d executes for max(1, round(d·factor)) where
	// factor is drawn with mean 1 and this relative spread.
	RelStdDev float64
	// Bias shifts all runtimes multiplicatively (e.g. 0.1 = tasks
	// systematically run 10% longer). Applied after the random factor.
	Bias float64
	// Seed drives the noise deterministically.
	Seed uint64
}

// factor draws the runtime multiplier for node v.
func (n Noise) factor(v int) float64 {
	if n.RelStdDev == 0 && n.Bias == 0 {
		return 1
	}
	r := rng.New(rng.Mix(n.Seed, uint64(v)|0x51a9<<32))
	f := 1.0
	if n.RelStdDev > 0 {
		f = math.Exp(r.Normal(0, n.RelStdDev))
	}
	return f * (1 + n.Bias)
}

// Result reports a simulated execution.
type Result struct {
	// Start and Dur are the realized start times and durations.
	Start []int64
	Dur   []int64
	// Makespan is the realized completion time.
	Makespan int64
	// Cost is the realized carbon cost under the evaluation profile.
	// It equals BrownEnergy by definition (Section 3: carbon cost is
	// proportional to the non-green power).
	Cost int64
	// GreenEnergy is the total energy drawn from the green budget:
	// Σ_t min(P_t, G_t).
	GreenEnergy int64
	// BrownEnergy is the total energy above the budget: Σ_t max(P_t−G_t, 0).
	BrownEnergy int64
	// DeadlineMet reports whether the realized makespan fits the
	// evaluation profile's horizon.
	DeadlineMet bool
	// Shifted counts nodes that could not start at their planned time.
	Shifted int
}

// TotalEnergy returns the platform's total energy draw over the horizon.
func (r *Result) TotalEnergy() int64 { return r.GreenEnergy + r.BrownEnergy }

// GreenFraction returns the share of energy covered by green power.
func (r *Result) GreenFraction() float64 {
	total := r.TotalEnergy()
	if total == 0 {
		return 1
	}
	return float64(r.GreenEnergy) / float64(total)
}

// Execute simulates the planned schedule with the given runtime noise and
// evaluates carbon under actual (which may differ from the profile the
// plan was optimized for). The plan must be valid for the instance; the
// execution may overrun the horizon, in which case DeadlineMet is false
// and the overrun time is costed by extending the profile's last interval
// (the grid does not stop at the planner's horizon).
func Execute(inst *ceg.Instance, plan *schedule.Schedule, actual *power.Profile, noise Noise) (*Result, error) {
	N := inst.N()
	if len(plan.Start) != N {
		return nil, fmt.Errorf("sim: plan covers %d nodes, instance has %d", len(plan.Start), N)
	}
	order, err := inst.G.TopoOrder()
	if err != nil {
		return nil, fmt.Errorf("sim: %w", err)
	}
	res := &Result{
		Start: make([]int64, N),
		Dur:   make([]int64, N),
	}
	for v := 0; v < N; v++ {
		d := int64(math.Round(float64(inst.Dur[v]) * noise.factor(v)))
		if d < 1 {
			d = 1
		}
		res.Dur[v] = d
	}
	// Right-shift execution: planned start, delayed by late predecessors.
	// Ordering edges are part of Gc, so processor exclusivity is implied.
	for _, v := range order {
		start := plan.Start[v]
		for _, ei := range inst.G.InEdges(v) {
			e := inst.G.Edges[ei]
			if f := res.Start[e.From] + res.Dur[e.From]; f > start {
				start = f
			}
		}
		if start > plan.Start[v] {
			res.Shifted++
		}
		res.Start[v] = start
		if f := start + res.Dur[v]; f > res.Makespan {
			res.Makespan = f
		}
	}
	res.DeadlineMet = res.Makespan <= actual.T()
	eval := actual
	if res.Makespan > actual.T() {
		eval = actual.Clip(res.Makespan)
	}
	res.BrownEnergy, res.GreenEnergy = energySplit(inst, res.Start, res.Dur, eval)
	res.Cost = res.BrownEnergy
	return res, nil
}

// energySplit is the Appendix A.1 sweep over realized (start, duration)
// pairs, additionally accounting for the green share min(P_t, G_t).
func energySplit(inst *ceg.Instance, start, dur []int64, prof *power.Profile) (brown, green int64) {
	type event struct {
		t int64
		d int64
	}
	events := make([]event, 0, 2*inst.N())
	for v := 0; v < inst.N(); v++ {
		_, work := inst.ProcPower(v)
		events = append(events, event{start[v], work})
		events = append(events, event{start[v] + dur[v], -work})
	}
	sort.Slice(events, func(i, j int) bool { return events[i].t < events[j].t })
	idle := inst.TotalIdlePower()
	var workPower int64
	ei := 0
	for ei < len(events) && events[ei].t <= 0 {
		workPower += events[ei].d
		ei++
	}
	cur := int64(0)
	for _, iv := range prof.Intervals {
		for cur < iv.End {
			next := iv.End
			if ei < len(events) && events[ei].t < next {
				next = events[ei].t
			}
			if next > cur {
				p := idle + workPower
				if over := p - iv.Budget; over > 0 {
					brown += over * (next - cur)
					green += iv.Budget * (next - cur)
				} else {
					green += p * (next - cur)
				}
				cur = next
			}
			for ei < len(events) && events[ei].t == cur {
				workPower += events[ei].d
				ei++
			}
		}
	}
	return brown, green
}

// Replay is Execute with no noise and the plan's own profile: it must
// reproduce the plan exactly. It exists as an executable consistency check
// between the simulator and the static cost model.
func Replay(inst *ceg.Instance, plan *schedule.Schedule, prof *power.Profile) (*Result, error) {
	return Execute(inst, plan, prof, Noise{})
}
