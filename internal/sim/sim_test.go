package sim

import (
	"context"

	"testing"
	"testing/quick"

	"repro/internal/ceg"
	"repro/internal/core"
	"repro/internal/dag"
	"repro/internal/heft"
	"repro/internal/platform"
	"repro/internal/power"
	"repro/internal/rng"
	"repro/internal/schedule"
	"repro/internal/wfgen"
)

func testInstance(tb testing.TB, n int, seed uint64) (*ceg.Instance, *power.Profile, *schedule.Schedule) {
	tb.Helper()
	fam := wfgen.Families()[int(seed%4)]
	d, err := wfgen.Generate(fam, n, seed)
	if err != nil {
		tb.Fatal(err)
	}
	cluster := platform.Small(seed)
	h, err := heft.Schedule(d, cluster)
	if err != nil {
		tb.Fatal(err)
	}
	inst, err := ceg.Build(d, ceg.FromHEFT(h.Proc, h.Order, h.Finish), cluster)
	if err != nil {
		tb.Fatal(err)
	}
	D := core.ASAPMakespan(inst)
	gmin, gmax := power.PlatformBounds(inst.TotalIdlePower(), cluster.ComputeWork())
	prof, err := power.Generate(power.S1, 2*D, 24, gmin, gmax, rng.New(seed))
	if err != nil {
		tb.Fatal(err)
	}
	s, _, err := core.Run(context.Background(), inst, prof, core.Options{Score: core.ScorePressureW, Refined: true, LocalSearch: true})
	if err != nil {
		tb.Fatal(err)
	}
	return inst, prof, s
}

func TestReplayReproducesPlan(t *testing.T) {
	for seed := uint64(0); seed < 4; seed++ {
		inst, prof, plan := testInstance(t, 60, seed)
		res, err := Replay(inst, plan, prof)
		if err != nil {
			t.Fatal(err)
		}
		for v := range plan.Start {
			if res.Start[v] != plan.Start[v] {
				t.Fatalf("seed %d: replay moved node %d: %d → %d", seed, v, plan.Start[v], res.Start[v])
			}
			if res.Dur[v] != inst.Dur[v] {
				t.Fatalf("seed %d: replay changed duration of %d", seed, v)
			}
		}
		if res.Shifted != 0 {
			t.Errorf("seed %d: replay shifted %d nodes", seed, res.Shifted)
		}
		if !res.DeadlineMet {
			t.Errorf("seed %d: replay missed the deadline", seed)
		}
		if want := schedule.CarbonCost(inst, plan, prof); res.Cost != want {
			t.Errorf("seed %d: replay cost %d != static cost %d", seed, res.Cost, want)
		}
		if res.Makespan != schedule.Makespan(inst, plan) {
			t.Errorf("seed %d: replay makespan mismatch", seed)
		}
	}
}

func TestEnergySplitConsistency(t *testing.T) {
	inst, prof, plan := testInstance(t, 50, 2)
	res, err := Replay(inst, plan, prof)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cost != res.BrownEnergy {
		t.Errorf("Cost %d != BrownEnergy %d", res.Cost, res.BrownEnergy)
	}
	// Total energy must equal Σ_t P_t: idle over the horizon plus
	// work-power·duration per node.
	want := inst.TotalIdlePower() * prof.T()
	for v := 0; v < inst.N(); v++ {
		_, work := inst.ProcPower(v)
		want += work * inst.Dur[v]
	}
	if res.TotalEnergy() != want {
		t.Errorf("TotalEnergy = %d, want %d", res.TotalEnergy(), want)
	}
	if f := res.GreenFraction(); f < 0 || f > 1 {
		t.Errorf("GreenFraction = %v", f)
	}
}

func TestGreenFractionDegenerate(t *testing.T) {
	r := &Result{}
	if r.GreenFraction() != 1 {
		t.Error("zero-energy execution should count as fully green")
	}
}

func TestNoiseFactorDeterministic(t *testing.T) {
	n := Noise{RelStdDev: 0.2, Seed: 9}
	if n.factor(5) != n.factor(5) {
		t.Error("factor not deterministic")
	}
	if n.factor(5) == n.factor(6) {
		t.Error("factor identical across nodes (suspicious)")
	}
	exact := Noise{}
	if exact.factor(3) != 1 {
		t.Error("zero noise should give factor 1")
	}
}

func TestBiasLengthensRuntimes(t *testing.T) {
	inst, prof, plan := testInstance(t, 50, 1)
	res, err := Execute(inst, plan, prof, Noise{Bias: 0.3, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Makespan <= schedule.Makespan(inst, plan) {
		t.Errorf("30%% slower tasks did not extend the makespan (%d vs %d)",
			res.Makespan, schedule.Makespan(inst, plan))
	}
	longer := 0
	for v := range res.Dur {
		if res.Dur[v] > inst.Dur[v] {
			longer++
		}
	}
	if longer < inst.N()/2 {
		t.Errorf("only %d/%d durations grew under positive bias", longer, inst.N())
	}
}

func TestExecutionStaysLegal(t *testing.T) {
	// Under any noise the realized execution must respect precedence and
	// processor exclusivity (right-shift repair guarantees it).
	f := func(seed uint64) bool {
		inst, prof, plan := testInstance(t, 40, seed%8)
		res, err := Execute(inst, plan, prof, Noise{RelStdDev: 0.3, Seed: seed})
		if err != nil {
			return false
		}
		for _, e := range inst.G.Edges {
			if res.Start[e.To] < res.Start[e.From]+res.Dur[e.From] {
				return false
			}
		}
		for v := range res.Start {
			if res.Start[v] < plan.Start[v] {
				return false // repair never starts early
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}

func TestDeadlineOverrunDetected(t *testing.T) {
	// A chain with zero slack: any slowdown must blow the deadline.
	d := dag.New(3)
	for i := 0; i < 3; i++ {
		d.SetWeight(i, 10)
	}
	d.AddEdge(0, 1, 1)
	d.AddEdge(1, 2, 1)
	cluster := platform.New([]platform.ProcType{{Name: "U", Speed: 1, Idle: 0, Work: 5}}, []int{1}, 1)
	inst, err := ceg.Build(d, &ceg.Mapping{
		Proc: []int{0, 0, 0}, Order: [][]int{{0, 1, 2}}, Finish: []int64{10, 20, 30},
	}, cluster)
	if err != nil {
		t.Fatal(err)
	}
	prof := power.Constant(30, 100)
	plan := core.ASAP(inst)
	res, err := Execute(inst, plan, prof, Noise{Bias: 0.5, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.DeadlineMet {
		t.Error("50% slowdown on a zero-slack chain kept the deadline?")
	}
	if res.Makespan <= 30 {
		t.Errorf("makespan %d, want > 30", res.Makespan)
	}
	// Overrun time is still costed.
	if res.Cost < 0 {
		t.Error("negative cost")
	}
}

func TestForecastErrorShapes(t *testing.T) {
	prof := power.Constant(100, 50)
	// Zero error: identical forecast.
	same := (ForecastError{}).Forecast(prof)
	if same.Intervals[0].Budget != 50 {
		t.Error("zero-error forecast changed the budget")
	}
	// Nonzero error: deterministic per seed, budgets stay non-negative.
	prof2, err := power.Generate(power.S1, 200, 24, 0, 100, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	fe := ForecastError{Base: 0.1, Growth: 0.5, Seed: 3}
	a := fe.Forecast(prof2)
	b := fe.Forecast(prof2)
	changed := false
	for j := range a.Intervals {
		if a.Intervals[j].Budget != b.Intervals[j].Budget {
			t.Fatal("forecast not deterministic")
		}
		if a.Intervals[j].Budget < 0 {
			t.Fatal("negative forecast budget")
		}
		if a.Intervals[j].Budget != prof2.Intervals[j].Budget {
			changed = true
		}
	}
	if !changed {
		t.Error("forecast identical to actuals despite error model")
	}
	if err := a.Validate(); err != nil {
		t.Error(err)
	}
}

func TestPlanOnForecastEvaluateOnActual(t *testing.T) {
	// End-to-end forecast study shape: planning against a noisy forecast
	// must still produce a legal execution, and with zero forecast error
	// the realized cost equals the planned cost.
	inst, actual, _ := testInstance(t, 60, 5)
	forecast := (ForecastError{Base: 0.2, Growth: 0.3, Seed: 7}).Forecast(actual)
	plan, _, err := core.Run(context.Background(), inst, forecast, core.Options{Score: core.ScoreSlackW, LocalSearch: true})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Execute(inst, plan, actual, Noise{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.DeadlineMet {
		t.Error("same horizon, no runtime noise: deadline must hold")
	}
	if res.Cost != schedule.CarbonCost(inst, plan, actual) {
		t.Error("realized cost disagrees with static evaluation under the actual profile")
	}
}
