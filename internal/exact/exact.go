// Package exact provides a provably optimal solver for small instances of
// the carbon-aware scheduling problem, via branch-and-bound over integer
// start times.
//
// It plays the role of the paper's Gurobi-backed ILP in the quality
// comparison of Figure 7: both compute the true optimum, and on tiny
// instances it also cross-validates the time-indexed ILP model of
// internal/ilp. The key pruning fact is that the objective
// Σ_t max(P_t − G_t, 0) is monotone in added work power, so the cost of a
// partial schedule (scheduled tasks only, full idle floor) lower-bounds
// every completion.
package exact

import (
	"context"
	"fmt"
	"sort"

	"repro/internal/ceg"
	"repro/internal/power"
	"repro/internal/schedule"
	"repro/internal/scherr"
)

// Options bounds the search effort.
type Options struct {
	// MaxNodes aborts the search after this many search-tree nodes
	// (0 = default of 50 million).
	MaxNodes int64
	// UpperBound primes the incumbent with a known feasible cost, e.g.
	// from a heuristic. Use -1 (or leave the zero value with Incumbent ==
	// nil) for "unknown".
	Incumbent *schedule.Schedule
}

const defaultMaxNodes = 50_000_000

// ErrBudget is returned when the node budget is exhausted before the
// search space is covered; the result is then only an upper bound. It is
// the shared scherr.ErrBudgetExhausted sentinel, so errors.Is matches
// either name.
var ErrBudget = scherr.ErrBudgetExhausted

// ctxCheckStride is how many search-tree nodes are expanded between
// context polls.
const ctxCheckStride = 4096

// Solve finds a minimum-carbon-cost schedule for the instance under the
// profile's deadline. It returns the optimal schedule and its cost.
// Instances should be tiny (roughly ≤ 12 tasks and T ≤ 100): the search is
// exponential. A canceled context aborts the search; like a budget hit,
// the incumbent found so far (if any) is returned alongside the
// scherr.ErrCanceled-wrapping error as an upper bound.
func Solve(ctx context.Context, inst *ceg.Instance, prof *power.Profile, opt Options) (*schedule.Schedule, int64, error) {
	return SolveZones(ctx, inst, power.SingleZone(prof), opt)
}

// SolveZones is Solve against per-zone green power: each task's marginal
// placement cost is probed on the partial timeline of its own grid zone,
// and the minimized objective is the summed carbon cost over zones. The
// pruning argument is unchanged — the objective stays monotone in added
// work power zone by zone, so the idle-only floor still lower-bounds
// every completion. A single-zone set reproduces Solve exactly (Solve
// delegates here).
func SolveZones(ctx context.Context, inst *ceg.Instance, zs *power.ZoneSet, opt Options) (*schedule.Schedule, int64, error) {
	if err := schedule.CheckZones(inst, zs); err != nil {
		return nil, 0, err
	}
	T := zs.T()
	N := inst.N()
	maxNodes := opt.MaxNodes
	if maxNodes <= 0 {
		maxNodes = defaultMaxNodes
	}

	order, err := inst.G.TopoOrder()
	if err != nil {
		return nil, 0, fmt.Errorf("exact: %w", err)
	}

	// Static latest start times (deadline feasibility).
	lst := make([]int64, N)
	for i := N - 1; i >= 0; i-- {
		v := order[i]
		limit := T
		for _, ei := range inst.G.OutEdges(v) {
			e := inst.G.Edges[ei]
			if lst[e.To] < limit {
				limit = lst[e.To]
			}
		}
		lst[v] = limit - inst.Dur[v]
		if lst[v] < 0 {
			return nil, 0, &scherr.InfeasibleDeadlineError{Deadline: T, Node: v, EST: 0, LST: lst[v]}
		}
	}

	s := schedule.New(N)
	best := schedule.New(N)
	bestCost := int64(-1)
	if opt.Incumbent != nil {
		if err := schedule.Validate(inst, opt.Incumbent, T); err != nil {
			return nil, 0, fmt.Errorf("exact: bad incumbent: %w", err)
		}
		copy(best.Start, opt.Incumbent.Start)
		bestCost = schedule.CarbonCostZones(inst, opt.Incumbent, zs)
	}

	// Per-zone timelines holding only the scheduled prefix; floor is the
	// idle-only cost, which every completion pays at least.
	tls := schedule.NewZoneTimelines(inst, nil, zs)
	floor := tls.TotalCost()

	work := make([]int64, N)
	for v := 0; v < N; v++ {
		_, w := inst.ProcPower(v)
		work[v] = w
	}

	// Symmetry breaking: independent tasks (no edges) with identical
	// duration and processor power are interchangeable, so we may demand
	// non-decreasing start times within each such group. symPred[v] is the
	// previous member of v's group, or -1.
	symPred := make([]int, N)
	type symKey struct{ dur, idle, work int64 }
	lastOfGroup := map[symKey]int{}
	for v := 0; v < N; v++ {
		symPred[v] = -1
		if inst.G.InDegree(v) != 0 || inst.G.OutDegree(v) != 0 {
			continue
		}
		idle, w := inst.ProcPower(v)
		key := symKey{inst.Dur[v], idle, w}
		if prev, ok := lastOfGroup[key]; ok {
			symPred[v] = prev
		}
		lastOfGroup[key] = v
	}

	var nodes int64
	var budgetHit bool
	var ctxErr error
	done := false // set when bestCost reaches the floor (global optimum)

	var dfs func(depth int, partial int64)
	dfs = func(depth int, partial int64) {
		if budgetHit || done || ctxErr != nil {
			return
		}
		nodes++
		if nodes > maxNodes {
			budgetHit = true
			return
		}
		if nodes%ctxCheckStride == 0 {
			if err := ctx.Err(); err != nil {
				ctxErr = scherr.Canceled(err)
				return
			}
		}
		if bestCost >= 0 && partial >= bestCost {
			return // even the floor of this subtree is no better
		}
		if depth == N {
			copy(best.Start, s.Start)
			bestCost = partial
			if bestCost == floor {
				done = true // matches the global lower bound
			}
			return
		}
		v := order[depth]
		est := int64(0)
		for _, ei := range inst.G.InEdges(v) {
			e := inst.G.Edges[ei]
			if f := s.Start[e.From] + inst.Dur[e.From]; f > est {
				est = f
			}
		}
		if p := symPred[v]; p >= 0 && s.Start[p] > est {
			est = s.Start[p] // interchangeable twin scheduled earlier
		}
		if est > lst[v] {
			return
		}
		// Evaluate every candidate start's marginal cost, then branch in
		// increasing marginal-cost order so good incumbents appear early.
		type cand struct {
			start int64
			delta int64
		}
		cands := make([]cand, 0, lst[v]-est+1)
		tl := tls.For(v) // placing v only perturbs its zone's draw
		for st := est; st <= lst[v]; st++ {
			cands = append(cands, cand{st, tl.PlaceDelta(st, st+inst.Dur[v], work[v])})
		}
		sort.SliceStable(cands, func(i, j int) bool { return cands[i].delta < cands[j].delta })
		for _, c := range cands {
			if bestCost >= 0 && partial+c.delta >= bestCost {
				continue
			}
			s.Start[v] = c.start
			tl.Add(c.start, c.start+inst.Dur[v], work[v])
			dfs(depth+1, partial+c.delta)
			tl.Remove(c.start, c.start+inst.Dur[v], work[v])
			if budgetHit || done || ctxErr != nil {
				return
			}
		}
	}
	dfs(0, floor)

	if bestCost < 0 {
		if ctxErr != nil {
			return nil, 0, ctxErr
		}
		return nil, 0, fmt.Errorf("exact: no feasible schedule found")
	}
	if err := schedule.Validate(inst, best, T); err != nil {
		return nil, 0, fmt.Errorf("exact: internal error, invalid best schedule: %w", err)
	}
	if ctxErr != nil {
		return best, bestCost, ctxErr
	}
	if budgetHit {
		return best, bestCost, &scherr.BudgetError{Nodes: nodes}
	}
	return best, bestCost, nil
}
