package exact

import (
	"context"
	"errors"

	"testing"
	"testing/quick"

	"repro/internal/ceg"
	"repro/internal/core"
	"repro/internal/dag"
	"repro/internal/dp"
	"repro/internal/platform"
	"repro/internal/power"
	"repro/internal/rng"
	"repro/internal/schedule"
	"repro/internal/scherr"
)

// uniChain builds a single-processor chain instance (speed 1).
func uniChain(tb testing.TB, weights []int64, idle, work int64) *ceg.Instance {
	tb.Helper()
	n := len(weights)
	d := dag.New(n)
	order := make([]int, n)
	finish := make([]int64, n)
	var cum int64
	for i := range weights {
		d.SetWeight(i, weights[i])
		if i > 0 {
			d.AddEdge(i-1, i, 1)
		}
		order[i] = i
		cum += weights[i]
		finish[i] = cum
	}
	cluster := platform.New([]platform.ProcType{{Name: "U", Speed: 1, Idle: idle, Work: work}}, []int{1}, 1)
	inst, err := ceg.Build(d, &ceg.Mapping{Proc: make([]int, n), Order: [][]int{order}, Finish: finish}, cluster)
	if err != nil {
		tb.Fatal(err)
	}
	return inst
}

// multiInstance builds a small 2-processor instance with a cross edge.
func multiInstance(tb testing.TB, seed uint64) *ceg.Instance {
	tb.Helper()
	r := rng.New(seed)
	n := 3 + r.Intn(3)
	d := dag.New(n)
	for i := 0; i < n; i++ {
		d.SetWeight(i, r.IntRange(1, 3))
		for j := i + 1; j < n; j++ {
			if r.Float64() < 0.3 {
				d.AddEdge(i, j, r.IntRange(1, 2))
			}
		}
	}
	cluster := platform.New([]platform.ProcType{
		{Name: "A", Speed: 1, Idle: 1, Work: 3},
		{Name: "B", Speed: 2, Idle: 2, Work: 5},
	}, []int{1, 1}, seed)
	proc := make([]int, n)
	finish := make([]int64, n)
	var orders [2][]int
	var ends [2]int64
	topo, _ := d.TopoOrder()
	for _, v := range topo {
		p := r.Intn(2)
		proc[v] = p
		orders[p] = append(orders[p], v)
		ends[p] += cluster.ExecTime(d.Tasks[v].Weight, p)
		finish[v] = ends[p]
	}
	inst, err := ceg.Build(d, &ceg.Mapping{Proc: proc, Order: orders[:], Finish: finish}, cluster)
	if err != nil {
		tb.Fatal(err)
	}
	return inst
}

func TestSolveSingleTaskOptimal(t *testing.T) {
	inst := uniChain(t, []int64{2}, 0, 5)
	prof, err := power.NewProfile([]int64{4, 4}, []int64{0, 10})
	if err != nil {
		t.Fatal(err)
	}
	s, cost, err := Solve(context.Background(), inst, prof, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if cost != 0 {
		t.Errorf("cost = %d, want 0", cost)
	}
	if s.Start[0] < 4 {
		t.Errorf("task at %d, want inside green window [4, 8)", s.Start[0])
	}
}

func TestSolveMatchesUniprocessorDP(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		n := 1 + r.Intn(4)
		weights := make([]int64, n)
		var total int64
		for i := range weights {
			weights[i] = r.IntRange(1, 3)
			total += weights[i]
		}
		idle, work := r.IntRange(0, 2), r.IntRange(1, 4)
		inst := uniChainQuick(weights, idle, work)
		T := total + r.IntRange(1, 12)
		J := int(r.IntRange(1, 4))
		if int64(J) > T {
			J = int(T)
		}
		prof, err := power.Generate(power.Scenarios()[r.Intn(4)], T, J, 0, r.IntRange(1, idle+work+2), r)
		if err != nil {
			return false
		}
		_, bbCost, err := Solve(context.Background(), inst, prof, Options{})
		if err != nil {
			return false
		}
		res, err := dp.Solve(&dp.Problem{Dur: weights, Idle: idle, Work: work, Prof: prof})
		if err != nil {
			return false
		}
		// The DP ignores link processors (there are none on a chain) and
		// uses the same cost model, so the optima must agree.
		return bbCost == res.Cost
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func uniChainQuick(weights []int64, idle, work int64) *ceg.Instance {
	n := len(weights)
	d := dag.New(n)
	order := make([]int, n)
	finish := make([]int64, n)
	var cum int64
	for i := range weights {
		d.SetWeight(i, weights[i])
		if i > 0 {
			d.AddEdge(i-1, i, 1)
		}
		order[i] = i
		cum += weights[i]
		finish[i] = cum
	}
	cluster := platform.New([]platform.ProcType{{Name: "U", Speed: 1, Idle: idle, Work: work}}, []int{1}, 1)
	inst, err := ceg.Build(d, &ceg.Mapping{Proc: make([]int, n), Order: [][]int{order}, Finish: finish}, cluster)
	if err != nil {
		panic(err)
	}
	return inst
}

func TestSolveNeverWorseThanHeuristics(t *testing.T) {
	for seed := uint64(0); seed < 8; seed++ {
		inst := multiInstance(t, seed)
		D := core.ASAPMakespan(inst)
		T := D + 10
		r := rng.New(seed)
		gmin, gmax := power.PlatformBounds(inst.TotalIdlePower(), 8)
		prof, err := power.Generate(power.S1, T, 4, gmin, gmax, r)
		if err != nil {
			t.Fatal(err)
		}
		_, optCost, err := Solve(context.Background(), inst, prof, Options{})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		for _, opt := range core.AllVariants() {
			s, _, err := core.Run(context.Background(), inst, prof, opt)
			if err != nil {
				t.Fatalf("seed %d %s: %v", seed, opt.Name(), err)
			}
			if c := schedule.CarbonCost(inst, s, prof); c < optCost {
				t.Errorf("seed %d: heuristic %s cost %d beats 'optimal' %d",
					seed, opt.Name(), c, optCost)
			}
		}
		asapCost := schedule.CarbonCost(inst, core.ASAP(inst), prof)
		if asapCost < optCost {
			t.Errorf("seed %d: ASAP cost %d beats 'optimal' %d", seed, asapCost, optCost)
		}
	}
}

func TestSolveUsesIncumbent(t *testing.T) {
	inst := uniChain(t, []int64{2, 2}, 1, 2)
	prof, err := power.NewProfile([]int64{5, 5}, []int64{1, 5})
	if err != nil {
		t.Fatal(err)
	}
	inc := core.ASAP(inst)
	s, cost, err := Solve(context.Background(), inst, prof, Options{Incumbent: inc})
	if err != nil {
		t.Fatal(err)
	}
	if c := schedule.CarbonCost(inst, s, prof); c != cost {
		t.Errorf("reported cost %d != evaluated %d", cost, c)
	}
	if asap := schedule.CarbonCost(inst, inc, prof); cost > asap {
		t.Errorf("optimum %d worse than incumbent %d", cost, asap)
	}
}

func TestSolveBudgetExhaustion(t *testing.T) {
	inst := uniChain(t, []int64{1, 1, 1, 1, 1}, 0, 1)
	prof := power.Constant(40, 0)
	_, _, err := Solve(context.Background(), inst, prof, Options{MaxNodes: 10})
	if !errors.Is(err, ErrBudget) {
		t.Errorf("err = %v, want ErrBudget (with tiny node budget)", err)
	}
	var be *scherr.BudgetError
	if !errors.As(err, &be) || be.Nodes <= 10 {
		t.Errorf("err = %#v, want *scherr.BudgetError with Nodes > 10", err)
	}
}

func TestSolveInfeasible(t *testing.T) {
	inst := uniChain(t, []int64{5, 5}, 1, 1)
	prof := power.Constant(9, 10)
	if _, _, err := Solve(context.Background(), inst, prof, Options{}); err == nil {
		t.Error("infeasible deadline not rejected")
	}
}

func TestSolveRejectsBadIncumbent(t *testing.T) {
	inst := uniChain(t, []int64{2, 2}, 1, 1)
	prof := power.Constant(10, 5)
	bad := schedule.New(inst.N())
	bad.Start[1] = 0 // overlaps task 0
	if _, _, err := Solve(context.Background(), inst, prof, Options{Incumbent: bad}); err == nil {
		t.Error("invalid incumbent accepted")
	}
}

func BenchmarkSolveTiny(b *testing.B) {
	inst := multiInstance(b, 3)
	D := core.ASAPMakespan(inst)
	prof, err := power.Generate(power.S3, D+8, 4, 0, 10, rng.New(3))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := Solve(context.Background(), inst, prof, Options{}); err != nil {
			b.Fatal(err)
		}
	}
}
