package cawosched_test

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	cawosched "repro"
)

// herdSolver builds a solver whose coalesced leader signals entered and
// then blocks until the test closes release, so followers can pile up
// deterministically (and tests that care which request leads can wait for
// the election before spawning followers). The gate passes instantly once
// release is closed, tolerating re-elections.
func herdSolver(t *testing.T, seed uint64, opts ...cawosched.SolverOption) (solver *cawosched.Solver, entered, release chan struct{}) {
	t.Helper()
	solver = cawosched.NewSolver(cawosched.SmallCluster(seed), opts...)
	entered = make(chan struct{}, 16) // buffered: re-elected leaders signal too
	release = make(chan struct{})
	solver.SetTestLeaderGate(func() {
		entered <- struct{}{}
		<-release
	})
	return solver, entered, release
}

// awaitCoalesced polls the solver until n requests have coalesced onto an
// in-flight leader (the followers are then parked on the flight channel).
func awaitCoalesced(t *testing.T, solver *cawosched.Solver, n int64) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for solver.Stats().SolveCoalesced < n {
		if time.Now().After(deadline) {
			t.Fatalf("only %d of %d followers coalesced in 10s", solver.Stats().SolveCoalesced, n)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestSolveCoalescingHerd is the tentpole acceptance property: a
// thundering herd of N concurrent identical requests costs exactly one
// underlying solve — one leader counts the one miss, the other N−1 coalesce
// onto its flight and share a byte-identical response.
func TestSolveCoalescingHerd(t *testing.T) {
	const N = 8
	wf, err := cawosched.GenerateWorkflow(cawosched.Methylseq, 60, 7)
	if err != nil {
		t.Fatal(err)
	}
	solver, _, release := herdSolver(t, 7)
	req := cawosched.Request{Workflow: wf, Variant: "pressWR-LS", Scenario: cawosched.S1, Seed: 7}

	responses := make([]*cawosched.Response, N)
	errs := make([]error, N)
	var wg sync.WaitGroup
	for i := 0; i < N; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			responses[i], errs[i] = solver.Solve(context.Background(), req)
		}(i)
	}
	awaitCoalesced(t, solver, N-1)
	close(release)
	wg.Wait()

	var leaders, followers int
	var leader *cawosched.Response
	for i, res := range responses {
		if errs[i] != nil {
			t.Fatalf("request %d failed: %v", i, errs[i])
		}
		if res.Coalesced {
			followers++
		} else {
			leaders++
			leader = res
		}
		if res.CacheHit {
			t.Errorf("request %d reported a cache hit inside the herd", i)
		}
	}
	if leaders != 1 || followers != N-1 {
		t.Fatalf("herd split %d leaders / %d followers, want 1 / %d", leaders, followers, N-1)
	}
	for i, res := range responses {
		if res.Cost != leader.Cost || res.ASAPCost != leader.ASAPCost || res.Deadline != leader.Deadline {
			t.Errorf("request %d diverged: cost %d want %d", i, res.Cost, leader.Cost)
		}
		for v := range leader.Schedule.Start {
			if res.Schedule.Start[v] != leader.Schedule.Start[v] {
				t.Fatalf("request %d schedule moved node %d", i, v)
			}
		}
	}

	st := solver.Stats()
	if st.SolveMisses != 1 || st.SolveCoalesced != N-1 || st.SolveHits != 0 {
		t.Errorf("stats = %+v, want 1 miss, %d coalesced, 0 hits", st, N-1)
	}
	if st.Solves != N {
		t.Errorf("stats counted %d solves, want %d", st.Solves, N)
	}

	// Every schedule handed out of the herd is a private copy: mutating
	// one response must not leak into the now-cached entry.
	want0 := leader.Schedule.Start[0]
	for _, res := range responses {
		res.Schedule.Start[0] += 1_000_000
	}
	after, err := solver.Solve(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if !after.CacheHit {
		t.Error("post-herd request missed the cache the leader populated")
	}
	if after.Schedule.Start[0] != want0 {
		t.Errorf("herd mutation leaked into the cache: start[0] = %d, want %d", after.Schedule.Start[0], want0)
	}
}

// TestSolveCoalescingFollowerCancel: a follower whose own context dies
// detaches with ErrCanceled without disturbing the leader's solve; the
// leader (and a patient follower) still complete normally.
func TestSolveCoalescingFollowerCancel(t *testing.T) {
	wf, err := cawosched.GenerateWorkflow(cawosched.Eager, 50, 9)
	if err != nil {
		t.Fatal(err)
	}
	solver, entered, release := herdSolver(t, 9)
	req := cawosched.Request{Workflow: wf, Variant: "press", Scenario: cawosched.S2, Seed: 9}

	var wg sync.WaitGroup
	var leaderResp, patientResp *cawosched.Response
	var leaderErr, patientErr, impatientErr error
	wg.Add(1)
	go func() { defer wg.Done(); leaderResp, leaderErr = solver.Solve(context.Background(), req) }()
	<-entered // the first request holds the flight before any follower joins
	followerCtx, cancelFollower := context.WithCancel(context.Background())
	defer cancelFollower()
	wg.Add(2)
	go func() { defer wg.Done(); _, impatientErr = solver.Solve(followerCtx, req) }()
	go func() { defer wg.Done(); patientResp, patientErr = solver.Solve(context.Background(), req) }()

	awaitCoalesced(t, solver, 2)
	cancelFollower()
	// Give the canceled follower time to detach before the leader finishes,
	// so the test exercises detach-while-in-flight rather than a post-hoc
	// context check.
	time.Sleep(10 * time.Millisecond)
	close(release)
	wg.Wait()

	if !errors.Is(impatientErr, cawosched.ErrCanceled) || !errors.Is(impatientErr, context.Canceled) {
		t.Errorf("canceled follower returned %v, want ErrCanceled", impatientErr)
	}
	if leaderErr != nil || patientErr != nil {
		t.Fatalf("leader/patient failed: %v / %v", leaderErr, patientErr)
	}
	if leaderResp.Coalesced {
		t.Error("leader reported Coalesced")
	}
	if !patientResp.Coalesced {
		t.Error("patient follower did not report Coalesced")
	}
	if patientResp.Cost != leaderResp.Cost {
		t.Errorf("patient follower cost %d != leader cost %d", patientResp.Cost, leaderResp.Cost)
	}
	if st := solver.Stats(); st.SolveMisses != 1 {
		t.Errorf("stats = %+v, want exactly 1 miss despite the cancellation", st)
	}
}

// TestSolveCoalescingErrorNotCached: an infeasible solve propagates its
// error to every coalesced follower, and nothing is cached — the next
// request re-solves (and fails again) rather than hitting a poisoned entry.
func TestSolveCoalescingErrorNotCached(t *testing.T) {
	wf, err := cawosched.GenerateWorkflow(cawosched.Bacass, 40, 2)
	if err != nil {
		t.Fatal(err)
	}
	cluster := cawosched.SmallCluster(2)
	inst, err := cawosched.PlanHEFT(wf, cluster)
	if err != nil {
		t.Fatal(err)
	}
	D := cawosched.ASAPMakespan(inst)
	solver, _, release := herdSolver(t, 2)
	// Explicit profile with a horizon below the ASAP makespan: infeasible
	// by construction.
	req := cawosched.Request{Workflow: wf, Variant: "press", Profile: cawosched.ConstantProfile(D/2, 1)}

	const N = 4
	errs := make([]error, N)
	var wg sync.WaitGroup
	for i := 0; i < N; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = solver.Solve(context.Background(), req)
		}(i)
	}
	awaitCoalesced(t, solver, N-1)
	close(release)
	wg.Wait()

	for i, err := range errs {
		if !errors.Is(err, cawosched.ErrInfeasibleDeadline) {
			t.Errorf("request %d returned %v, want ErrInfeasibleDeadline", i, err)
		}
	}
	st := solver.Stats()
	if st.SolveEntries != 0 {
		t.Errorf("error result was cached: %d entries", st.SolveEntries)
	}
	if st.SolveMisses != 1 || st.SolveCoalesced != N-1 {
		t.Errorf("stats = %+v, want 1 miss, %d coalesced", st, N-1)
	}

	// The failure is not sticky: a retry re-solves (new miss, same error).
	if _, err := solver.Solve(context.Background(), req); !errors.Is(err, cawosched.ErrInfeasibleDeadline) {
		t.Errorf("retry returned %v, want ErrInfeasibleDeadline", err)
	}
	if st := solver.Stats(); st.SolveMisses != 2 || st.SolveHits != 0 {
		t.Errorf("stats after retry = %+v, want 2 misses, 0 hits", st)
	}
}

// TestSolveCoalescingLeaderCancel: when the LEADER's context dies, its
// followers do not inherit the cancellation — a surviving follower re-runs
// the election, becomes the new leader, and completes the solve. The herd
// still costs one successful solve.
func TestSolveCoalescingLeaderCancel(t *testing.T) {
	wf, err := cawosched.GenerateWorkflow(cawosched.Methylseq, 50, 13)
	if err != nil {
		t.Fatal(err)
	}
	solver, entered, release := herdSolver(t, 13)
	req := cawosched.Request{Workflow: wf, Variant: "slackW", Scenario: cawosched.S3, Seed: 13}

	leaderCtx, cancelLeader := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	var leaderErr, followerErr error
	var followerResp *cawosched.Response
	wg.Add(1)
	go func() { defer wg.Done(); _, leaderErr = solver.Solve(leaderCtx, req) }()
	<-entered // the cancellable request must hold the flight before the follower joins
	wg.Add(1)
	go func() { defer wg.Done(); followerResp, followerErr = solver.Solve(context.Background(), req) }()

	awaitCoalesced(t, solver, 1)
	cancelLeader()
	close(release) // first leader unblocks into a dead context; the re-elected leader passes straight through
	wg.Wait()

	if !errors.Is(leaderErr, cawosched.ErrCanceled) {
		t.Errorf("canceled leader returned %v, want ErrCanceled", leaderErr)
	}
	if followerErr != nil {
		t.Fatalf("surviving follower failed: %v", followerErr)
	}
	if followerResp.Coalesced {
		t.Error("re-elected leader still reports Coalesced")
	}
	if followerResp.CacheHit {
		t.Error("re-elected leader reported a cache hit")
	}
	st := solver.Stats()
	// Both the canceled leader and the re-elected one count a miss; the
	// follower's first join counted one coalesce.
	if st.SolveMisses != 2 || st.SolveCoalesced != 1 {
		t.Errorf("stats = %+v, want 2 misses, 1 coalesced", st)
	}
	if st.SolveEntries != 1 {
		t.Errorf("cache holds %d entries after the recovered herd, want 1", st.SolveEntries)
	}
}

// TestSolveCoalescingDisabled pins the WithCoalescing(false) escape hatch:
// concurrent identical requests each solve solo (no coalesce counts), and
// sequential accounting is bit-identical to the coalescing solver's.
func TestSolveCoalescingDisabled(t *testing.T) {
	wf, err := cawosched.GenerateWorkflow(cawosched.Eager, 40, 3)
	if err != nil {
		t.Fatal(err)
	}
	solver := cawosched.NewSolver(cawosched.SmallCluster(3), cawosched.WithCoalescing(false))
	req := cawosched.Request{Workflow: wf, Variant: "press", Scenario: cawosched.S1, Seed: 3}

	const N = 4
	var wg sync.WaitGroup
	errs := make([]error, N)
	for i := 0; i < N; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = solver.Solve(context.Background(), req)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("request %d failed: %v", i, err)
		}
	}
	st := solver.Stats()
	if st.SolveCoalesced != 0 {
		t.Errorf("disabled coalescing still coalesced %d requests", st.SolveCoalesced)
	}
	if st.SolveHits+st.SolveMisses != N {
		t.Errorf("stats = %+v, want hits+misses == %d", st, N)
	}
	// Sequential traffic keys and counts identically with coalescing on.
	on := cawosched.NewSolver(cawosched.SmallCluster(3))
	for i := 0; i < 3; i++ {
		if _, err := on.Solve(context.Background(), req); err != nil {
			t.Fatal(err)
		}
	}
	if st := on.Stats(); st.SolveMisses != 1 || st.SolveHits != 2 || st.SolveCoalesced != 0 {
		t.Errorf("sequential stats with coalescing on = %+v, want 1 miss, 2 hits, 0 coalesced", st)
	}
}
