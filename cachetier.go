package cawosched

import (
	"container/list"
	"context"
	"encoding/json"
	"fmt"
	"strconv"
	"strings"
	"sync"

	"repro/internal/greenheft"
	"repro/internal/schedule"
)

// CacheTier is a pluggable external cache consulted between the
// in-process solve-response cache and a full solve: Get/Put on serialized
// solve records keyed by the hex solve-key digest. It is the seam that
// lets a fleet of schedd instances share warm solves — the in-process
// MemoryTier is the reference implementation; a peer tier (fanning Get
// out to `schedd -cache-peers` style replicas) plugs in here without
// touching the solver.
//
// Implementations must be safe for concurrent use and are treated as
// caches, not sources of truth: a Get may miss arbitrarily, records that
// fail validation against the requesting key are ignored, and Put is
// fire-and-forget (a tier that drops writes only costs re-solves). Only
// successful responses are ever stored. A coalesced herd consults the
// tier once — the flight leader queries on behalf of every follower.
//
// Both methods take the request's context so a remote tier can honor the
// caller's cancellation and deadline: a canceled or expired context must
// degrade Get to a miss (never an error, never a block) and may drop the
// Put. MemoryTier ignores the context; PeerTier bounds every network hop
// with it.
type CacheTier interface {
	// Get returns the record stored under key, if any. A canceled ctx is
	// a miss.
	Get(ctx context.Context, key string) ([]byte, bool)
	// Put stores a record under key, overwriting any previous one. Put
	// must not block the caller on slow storage (it is called on the
	// solve path with the response already computed).
	Put(ctx context.Context, key string, value []byte)
}

// tierKey renders a solve key for the external tier: the hex FNV-1a
// digest of every field that makes two solves interchangeable. Identical
// builds compute identical keys, so schedd processes sharing a tier share
// warm solves.
func tierKey(key solveKey) string {
	return strconv.FormatUint(key.sum(), 16)
}

// tierRecord is the serialized form of one cached solve: the full cache
// key (so a digest collision is detected by field comparison, the
// cross-process analogue of the in-memory caches' structural guards) plus
// the response payload. The schedule travels as its start-time vector —
// the instance itself is rebuilt from the local plan memo, which also
// revalidates the workflow structurally.
type tierRecord struct {
	// Key fields (must equal the requesting key, else the record is
	// ignored).
	Fingerprint uint64 `json:"fp"`
	ZoneDigest  uint64 `json:"zd"`
	Deadline    int64  `json:"deadline"`
	Score       int    `json:"score"`
	Refined     bool   `json:"refined,omitempty"`
	LocalSearch bool   `json:"ls,omitempty"`
	K           int    `json:"k"`
	Mu          int64  `json:"mu"`
	Marginal    bool   `json:"marginal,omitempty"`
	Policy      int    `json:"policy"`
	MapSearch   bool   `json:"map_search,omitempty"`

	// Payload.
	Mapping  string  `json:"mapping"` // winning policy (rebuilds the instance)
	Start    []int64 `json:"start"`
	Stats    Stats   `json:"stats"`
	D        int64   `json:"d"`
	Cost     int64   `json:"cost"`
	ASAPCost int64   `json:"asap_cost"`
}

// recordKey reconstructs the solve key a record was stored under.
func (r *tierRecord) recordKey() solveKey {
	return solveKey{
		fp:       r.Fingerprint,
		digest:   r.ZoneDigest,
		deadline: r.Deadline,
		opt: Options{
			Score:       Score(r.Score),
			Refined:     r.Refined,
			LocalSearch: r.LocalSearch,
			K:           r.K,
			Mu:          r.Mu,
		},
		marginal:  r.Marginal,
		policy:    greenheft.Policy(r.Policy),
		mapSearch: r.MapSearch,
	}
}

// tierPut serializes a fresh successful response into the tier.
// Fire-and-forget: encoding is infallible for these types, and the tier
// owns its durability.
func (s *Solver) tierPut(ctx context.Context, key solveKey, resp *Response) {
	rec := tierRecord{
		Fingerprint: key.fp,
		ZoneDigest:  key.digest,
		Deadline:    key.deadline,
		Score:       int(key.opt.Score),
		Refined:     key.opt.Refined,
		LocalSearch: key.opt.LocalSearch,
		K:           key.opt.K,
		Mu:          key.opt.Mu,
		Marginal:    key.marginal,
		Policy:      int(key.policy),
		MapSearch:   key.mapSearch,
		Mapping:     resp.Mapping,
		Start:       resp.Schedule.Start,
		Stats:       resp.Stats,
		D:           resp.D,
		Cost:        resp.Cost,
		ASAPCost:    resp.ASAPCost,
	}
	data, err := json.Marshal(&rec)
	if err != nil {
		return
	}
	s.tier.Put(ctx, tierKey(key), data)
}

// tierGet consults the external tier for the key and, on a valid record,
// rebuilds the full response: the instance comes from the local plan memo
// under the record's winning mapping policy (re-planning is exactly what
// the memo makes cheap, and it revalidates the workflow), and the
// schedule is validated against the instance and horizon before the
// response is trusted. Any failure — miss, decode error, key mismatch,
// validation failure — is a plain miss: the caller falls through to a
// real solve.
func (s *Solver) tierGet(ctx context.Context, key solveKey, job *solveJob) (*Response, bool) {
	data, ok := s.tier.Get(ctx, tierKey(key))
	if !ok {
		return nil, false
	}
	var rec tierRecord
	if err := json.Unmarshal(data, &rec); err != nil {
		return nil, false
	}
	if rec.recordKey() != key {
		return nil, false // digest collision across processes
	}
	pol, err := greenheft.ParsePolicy(rec.Mapping)
	if err != nil {
		return nil, false
	}
	var pz *ZoneSet
	if pol.ZoneAware() {
		pz = job.zones
	}
	e, _, err := s.planFor(ctx, job.req.Workflow, pol, pz)
	if err != nil {
		return nil, false
	}
	sched := &Schedule{Start: append([]int64(nil), rec.Start...)}
	if len(sched.Start) != len(e.asap.Start) {
		return nil, false
	}
	if err := schedule.Validate(e.inst, sched, key.deadline); err != nil {
		return nil, false
	}
	return &Response{
		Schedule: sched,
		Instance: e.inst,
		Zones:    job.zones,
		Profile:  job.prof,
		Stats:    rec.Stats,
		Variant:  job.variant,
		Mapping:  rec.Mapping,
		D:        rec.D,
		Deadline: key.deadline,
		Cost:     rec.Cost,
		ASAPCost: rec.ASAPCost,
		CacheHit: true,
	}, true
}

// MemoryTier is the in-process CacheTier: a mutex-guarded LRU of
// serialized records, bounded by entry count. It exists as the reference
// implementation and the test double for the fleet seam; within one
// process it adds nothing over the solver's own response cache (which
// sits in front of it), so production deployments would plug a shared
// remote tier into the same interface instead.
type MemoryTier struct {
	mu      sync.Mutex
	cap     int
	entries map[string]*list.Element
	lru     *list.List // memEntry values; front = most recently used

	gets, hits, puts int64
}

type memEntry struct {
	key string
	val []byte
}

// DefaultMemoryTierEntries bounds a MemoryTier built without an explicit
// size.
const DefaultMemoryTierEntries = 4096

// NewMemoryTier returns an empty tier bounded to maxEntries records
// (<= 0 selects DefaultMemoryTierEntries).
func NewMemoryTier(maxEntries int) *MemoryTier {
	if maxEntries <= 0 {
		maxEntries = DefaultMemoryTierEntries
	}
	return &MemoryTier{
		cap:     maxEntries,
		entries: make(map[string]*list.Element),
		lru:     list.New(),
	}
}

// Get returns the record stored under key. The context is ignored: the
// lookup is a local map access.
func (t *MemoryTier) Get(_ context.Context, key string) ([]byte, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.gets++
	el, ok := t.entries[key]
	if !ok {
		return nil, false
	}
	t.hits++
	t.lru.MoveToFront(el)
	return el.Value.(memEntry).val, true
}

// Put stores value under key, evicting the least-recently-used record
// when full. The value is copied; callers may reuse their buffer. The
// context is ignored.
func (t *MemoryTier) Put(_ context.Context, key string, value []byte) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.puts++
	val := append([]byte(nil), value...)
	if el, ok := t.entries[key]; ok {
		el.Value = memEntry{key: key, val: val}
		t.lru.MoveToFront(el)
		return
	}
	for len(t.entries) >= t.cap {
		back := t.lru.Back()
		if back == nil {
			break
		}
		delete(t.entries, back.Value.(memEntry).key)
		t.lru.Remove(back)
	}
	t.entries[key] = t.lru.PushFront(memEntry{key: key, val: val})
}

// Len returns the number of records currently held.
func (t *MemoryTier) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.entries)
}

// Keys returns the keys currently held, in no particular order.
func (t *MemoryTier) Keys() []string {
	t.mu.Lock()
	defer t.mu.Unlock()
	keys := make([]string, 0, len(t.entries))
	for k := range t.entries {
		keys = append(keys, k)
	}
	return keys
}

// TierStats is a MemoryTier usage snapshot.
type TierStats struct {
	Gets, Hits, Puts int64
	Entries          int
}

// Stats returns a snapshot of the tier's counters.
func (t *MemoryTier) Stats() TierStats {
	t.mu.Lock()
	defer t.mu.Unlock()
	return TierStats{Gets: t.gets, Hits: t.hits, Puts: t.puts, Entries: len(t.entries)}
}

// ParseCacheTier resolves a CLI tier spec (`schedd -cache-tier`):
//
//	""                       no tier (nil)
//	"none"                   no tier (nil)
//	"memory"                 in-process MemoryTier with the default bound
//	"memory:N"               in-process MemoryTier bounded to N records
//	"peers:h1,h2[:mem=N]"    distributed PeerTier over the listed schedd
//	                         instances (every fleet member lists the same
//	                         hosts, itself included, so the hash ring is
//	                         identical everywhere); mem=N bounds the local
//	                         store this instance contributes to the ring
func ParseCacheTier(spec string) (CacheTier, error) {
	switch {
	case spec == "" || spec == "none":
		return nil, nil
	case spec == "memory":
		return NewMemoryTier(0), nil
	case strings.HasPrefix(spec, "memory:"):
		n, err := strconv.Atoi(strings.TrimPrefix(spec, "memory:"))
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("cache tier %q: want memory:<entries> with a positive count", spec)
		}
		return NewMemoryTier(n), nil
	case strings.HasPrefix(spec, "peers:"):
		hosts, entries, err := parsePeersSpec(strings.TrimPrefix(spec, "peers:"))
		if err != nil {
			return nil, fmt.Errorf("cache tier %q: %w", spec, err)
		}
		return NewPeerTier(hosts, PeerTierOptions{LocalEntries: entries})
	default:
		return nil, fmt.Errorf(`unknown cache tier %q (want "none", "memory", "memory:<entries>", or "peers:<host,...>[:mem=<entries>]")`, spec)
	}
}

// parsePeersSpec splits the body of a "peers:" tier spec into its host
// list and the optional local-store bound from a trailing ":mem=N".
func parsePeersSpec(body string) (hosts []string, entries int, err error) {
	if i := strings.LastIndex(body, ":mem="); i >= 0 && !strings.Contains(body[i:], ",") {
		entries, err = strconv.Atoi(body[i+len(":mem="):])
		if err != nil || entries <= 0 {
			return nil, 0, fmt.Errorf("bad mem= suffix: want mem=<entries> with a positive count")
		}
		body = body[:i]
	}
	seen := make(map[string]bool)
	for _, host := range strings.Split(body, ",") {
		host = strings.TrimSpace(host)
		if host == "" {
			continue
		}
		if seen[host] {
			return nil, 0, fmt.Errorf("duplicate peer host %q", host)
		}
		seen[host] = true
		hosts = append(hosts, host)
	}
	if len(hosts) == 0 {
		return nil, 0, fmt.Errorf("empty peer host list")
	}
	return hosts, entries, nil
}
