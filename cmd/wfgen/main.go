// Command wfgen synthesizes workflow DAGs from the paper's four
// bioinformatics families and writes them as GraphViz .dot files, the
// interchange format the paper derives from Nextflow pipelines.
//
// Usage:
//
//	wfgen -family eager -n 1000 -o eager-1000.dot
//	wfgen -family bacass -real -o bacass.dot
package main

import (
	"flag"
	"fmt"
	"os"

	cawosched "repro"
	"repro/internal/wfgen"
)

func main() {
	var (
		family = flag.String("family", "methylseq", "workflow family: atacseq | bacass | eager | methylseq")
		n      = flag.Int("n", 200, "number of tasks")
		real   = flag.Bool("real", false, "use the family's real-world size instead of -n")
		seed   = flag.Uint64("seed", 42, "random seed")
		out    = flag.String("o", "", "output file (default: stdout)")
		stats  = flag.Bool("stats", false, "print structural statistics to stderr")
	)
	flag.Parse()
	if err := run(*family, *n, *real, *seed, *out, *stats); err != nil {
		fmt.Fprintln(os.Stderr, "wfgen:", err)
		os.Exit(1)
	}
}

func run(family string, n int, real bool, seed uint64, out string, stats bool) error {
	var fam wfgen.Family
	found := false
	for _, f := range wfgen.Families() {
		if f.String() == family {
			fam, found = f, true
			break
		}
	}
	if !found {
		return fmt.Errorf("unknown family %q", family)
	}
	if real {
		n = fam.RealSize()
	}
	wf, err := cawosched.GenerateWorkflow(fam, n, seed)
	if err != nil {
		return err
	}
	w := os.Stdout
	if out != "" {
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	name := fmt.Sprintf("%s_%d", fam, n)
	if err := cawosched.WriteWorkflowDOT(w, wf, name); err != nil {
		return err
	}
	if stats {
		lv := wf.Levels()
		depth := 0
		for _, l := range lv {
			if l > depth {
				depth = l
			}
		}
		fmt.Fprintf(os.Stderr, "%s: %d tasks, %d edges, depth %d, total work %d\n",
			name, wf.N(), wf.M(), depth+1, wf.TotalWork())
	}
	return nil
}
