package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	cawosched "repro"
)

func TestRunWritesParsableDOT(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "wf.dot")
	if err := run("eager", 120, false, 5, out, false); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	d, err := cawosched.ReadWorkflowDOT(f)
	if err != nil {
		t.Fatal(err)
	}
	if d.N() != 120 {
		t.Errorf("generated %d tasks, want 120", d.N())
	}
}

func TestRunRealSize(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "b.dot")
	if err := run("bacass", 9999, true, 5, out, true); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	// bacass real size is 57 tasks; the DOT must contain n56 but not n57.
	if !strings.Contains(string(data), "n56 ") {
		t.Error("n56 missing: real size not used")
	}
	if strings.Contains(string(data), "n57 ") {
		t.Error("n57 present: -n not overridden by -real")
	}
}

func TestRunUnknownFamily(t *testing.T) {
	if err := run("nope", 10, false, 1, "", false); err == nil {
		t.Error("unknown family accepted")
	}
}
