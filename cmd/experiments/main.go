// Command experiments regenerates the paper's evaluation artifacts: every
// table and figure of Section 6 (and Appendix A.5), printed as aligned
// text tables and optionally written as CSV files for plotting.
//
// By default it runs a reduced corpus (workflows capped at -max-tasks) so
// all artifacts regenerate in minutes; -max-tasks 0 runs the paper-scale
// corpus (34 workflows up to 30,000 tasks — hours of compute).
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/experiments"
)

func main() {
	var (
		maxTasks = flag.Int("max-tasks", 500, "largest workflow size to include (0 = full paper corpus)")
		seed     = flag.Uint64("seed", 42, "corpus seed")
		workers  = flag.Int("workers", 0, "parallel instances (0 = GOMAXPROCS)")
		outDir   = flag.String("out", "", "write CSV files to this directory (optional)")
		only     = flag.String("only", "all", "comma-separated artifacts: table1,fig1,...,fig8,table2,fig12,...,fig17,fig7,ablations,robustness or all (ablations/robustness only run when named explicitly)")
		quiet    = flag.Bool("q", false, "suppress progress output")
		saveTo   = flag.String("save", "", "persist the main corpus raw results to this JSON file")
	)
	flag.Parse()
	if err := run2(*maxTasks, *seed, *workers, *outDir, *only, *quiet, *saveTo); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

// run keeps the original signature for tests; run2 adds result saving.
func run(maxTasks int, seed uint64, workers int, outDir, only string, quiet bool) error {
	return run2(maxTasks, seed, workers, outDir, only, quiet, "")
}

func run2(maxTasks int, seed uint64, workers int, outDir, only string, quiet bool, saveTo string) error {
	want := map[string]bool{}
	for _, name := range strings.Split(only, ",") {
		want[strings.TrimSpace(name)] = true
	}
	all := want["all"]
	selected := func(name string) bool { return all || want[name] }

	var emitted []*experiments.Table
	emit := func(name string, t *experiments.Table) {
		fmt.Println(t.String())
		if outDir != "" {
			path := filepath.Join(outDir, name+".csv")
			if err := os.WriteFile(path, []byte(t.CSV()), 0o644); err != nil {
				fmt.Fprintf(os.Stderr, "warning: writing %s: %v\n", path, err)
			}
		}
		emitted = append(emitted, t)
	}
	if outDir != "" {
		if err := os.MkdirAll(outDir, 0o755); err != nil {
			return err
		}
	}

	if selected("table1") {
		emit("table1", experiments.Table1Platform())
	}

	// The main corpus powers figures 1-6, 8, 12-17.
	needMain := false
	for _, name := range []string{"fig1", "fig2", "fig3", "fig4", "fig5", "fig6", "fig8", "fig12", "fig13", "fig14", "fig15", "fig16", "fig17"} {
		if selected(name) {
			needMain = true
		}
	}
	if needMain {
		specs := experiments.Corpus(maxTasks, seed)
		algos := experiments.LSAlgorithms()
		names := algoNames(algos)
		fmt.Printf("running main corpus: %d instances x %d algorithms (max %d tasks)\n",
			len(specs), len(algos), maxTasks)
		start := time.Now()
		progress := func(done, total int) {
			if !quiet && (done%25 == 0 || done == total) {
				fmt.Printf("  %d/%d instances (%.0fs)\n", done, total, time.Since(start).Seconds())
			}
		}
		results, err := experiments.Run(specs, algos, workers, progress)
		if err != nil {
			return err
		}
		fmt.Printf("main corpus done in %s\n\n", time.Since(start).Round(time.Second))
		if saveTo != "" {
			f, err := os.Create(saveTo)
			if err != nil {
				return err
			}
			if err := experiments.WriteResults(f, results); err != nil {
				f.Close()
				return err
			}
			if err := f.Close(); err != nil {
				return err
			}
			fmt.Printf("raw results saved to %s\n\n", saveTo)
		}

		if selected("fig1") {
			emit("fig1", experiments.Fig1Ranks(results, names))
		}
		if selected("fig2") {
			emit("fig2", experiments.Fig2PerfProfile(results, names))
		}
		if selected("fig3") {
			for i, t := range experiments.Fig3PerfProfileByDeadline(results, names) {
				emit(fmt.Sprintf("fig3_%d", i), t)
			}
		}
		if selected("fig4") {
			emit("fig4", experiments.Fig4MedianCostRatio(results, names))
		}
		if selected("fig5") {
			for i, t := range experiments.Fig5CostRatioByDeadline(results, names) {
				emit(fmt.Sprintf("fig5_%d", i), t)
			}
		}
		if selected("fig6") {
			emit("fig6", experiments.Fig6BoxPlots(results, names))
		}
		if selected("fig8") {
			emit("fig8", experiments.Fig8RunningTime(results, names))
		}
		if selected("fig12") {
			emit("fig12", experiments.Fig12RunningTimeLarge(results, names))
		}
		if selected("fig13") {
			emit("fig13", experiments.Fig13RunningTimeByDeadline(results, names))
		}
		if selected("fig14") {
			for i, t := range experiments.Fig14CostRatioByCluster(results, names) {
				emit(fmt.Sprintf("fig14_%d", i), t)
			}
		}
		if selected("fig15") {
			for i, t := range experiments.Fig15CostRatioByScenario(results, names) {
				emit(fmt.Sprintf("fig15_%d", i), t)
			}
		}
		if selected("fig16") {
			for i, t := range experiments.Fig16CostRatioBySize(results, names) {
				emit(fmt.Sprintf("fig16_%d", i), t)
			}
		}
		if selected("fig17") {
			for i, t := range experiments.Fig17PerfProfileByCluster(results, names) {
				emit(fmt.Sprintf("fig17_%d", i), t)
			}
		}
	}

	if selected("table2") {
		specs := experiments.AblationCorpus(maxTasks, seed)
		fmt.Printf("running ablation corpus (Table 2): %d instances x 17 algorithms\n", len(specs))
		start := time.Now()
		results, err := experiments.Run(specs, experiments.Algorithms(), workers, nil)
		if err != nil {
			return err
		}
		fmt.Printf("ablation done in %s\n\n", time.Since(start).Round(time.Second))
		emit("table2", experiments.Table2LocalSearchAblation(results))
	}

	if selected("fig7") {
		fmt.Println("running exact-comparison corpus (Figure 7)")
		t, err := experiments.Fig7ExactComparison(seed, experiments.LSAlgorithms(), 20_000_000)
		if err != nil {
			return err
		}
		emit("fig7", t)
	}

	// Ablations and the Section 7 extension run on a reduced corpus (they
	// multiply the per-instance work by the sweep size) and are opt-in:
	// they run only when named explicitly, not under "all".
	if want["ablations"] {
		cap := maxTasks
		if cap <= 0 || cap > 500 {
			cap = 500
		}
		specs := experiments.Corpus(cap, seed)
		fmt.Printf("running ablations on %d instances\n", len(specs))
		if t, err := experiments.AblationK(specs, []int{1, 2, 3, 4}, workers); err != nil {
			return err
		} else {
			emit("ablation_k", t)
		}
		if t, err := experiments.AblationMu(specs, []int64{1, 5, 10, 20}, workers); err != nil {
			return err
		} else {
			emit("ablation_mu", t)
		}
		if t, err := experiments.AblationImprovers(specs, workers); err != nil {
			return err
		} else {
			emit("ablation_improvers", t)
		}
		if t, err := experiments.AblationGreedies(specs, workers); err != nil {
			return err
		} else {
			emit("ablation_greedies", t)
		}
		if t, err := experiments.AblationOrdering(specs, workers); err != nil {
			return err
		} else {
			emit("ablation_ordering", t)
		}
		if t, err := experiments.ExtensionTwoPass(specs, workers); err != nil {
			return err
		} else {
			emit("extension_twopass", t)
		}
	}

	// Robustness studies (runtime noise, forecast error) are opt-in too.
	if want["robustness"] {
		cap := maxTasks
		if cap <= 0 || cap > 500 {
			cap = 500
		}
		specs := experiments.Corpus(cap, seed)
		fmt.Printf("running robustness studies on %d instances\n", len(specs))
		if t, err := experiments.RobustnessRuntime(specs, []float64{0, 0.1, 0.2, 0.4}, workers); err != nil {
			return err
		} else {
			emit("robustness_runtime", t)
		}
		if t, err := experiments.RobustnessForecast(specs, []float64{0, 0.1, 0.25, 0.5}, workers); err != nil {
			return err
		} else {
			emit("robustness_forecast", t)
		}
	}

	if len(emitted) == 0 {
		return fmt.Errorf("no artifacts selected by -only=%q", only)
	}
	return nil
}

func algoNames(algos []experiments.Algorithm) []string {
	names := make([]string, len(algos))
	for i, a := range algos {
		names[i] = a.Name
	}
	return names
}
