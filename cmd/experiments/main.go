// Command experiments regenerates the paper's evaluation artifacts: every
// table and figure of Section 6 (and Appendix A.5), printed as aligned
// text tables and optionally written as CSV files for plotting.
//
// By default it runs a reduced corpus (workflows capped at -max-tasks) so
// all artifacts regenerate in minutes; -max-tasks 0 runs the paper-scale
// corpus (34 workflows up to 30,000 tasks — hours of compute).
//
// With -parallel N the command switches to sweep mode: the full grid
// (family × size × cluster × scenario S1–S4 × 17 algorithms × -seeds
// replicates) runs as independent jobs on an N-worker pool, streaming one
// JSONL record per job to -out in deterministic grid order. A job that
// panics or exceeds -job-timeout is recorded in-band and the sweep
// continues; -resume skips every job already completed in -out and
// appends only the missing ones. A summary aggregation (median cost ratio
// vs ASAP, running times) is printed when the sweep finishes.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"path/filepath"
	"strconv"
	"strings"
	"syscall"
	"time"

	cawosched "repro"
	"repro/internal/experiments"
)

func main() {
	var (
		maxTasks = flag.Int("max-tasks", 500, "largest workflow size to include (0 = full paper corpus)")
		seed     = flag.Uint64("seed", 42, "corpus seed")
		workers  = flag.Int("workers", 0, "parallel instances (0 = GOMAXPROCS)")
		outDir   = flag.String("out", "", "artifact mode: CSV directory; sweep mode: JSONL results path (default results.jsonl)")
		only     = flag.String("only", "all", "comma-separated artifacts: table1,fig1,...,fig8,table2,fig12,...,fig17,fig7,ablations,robustness,mapping,arrival or all (ablations/robustness/mapping/arrival only run when named explicitly)")
		quiet    = flag.Bool("q", false, "suppress progress output")
		saveTo   = flag.String("save", "", "persist the main corpus raw results to this JSON file")
		parallel = flag.Int("parallel", 0, "sweep mode: run the full grid on N workers, streaming JSONL (0 = artifact mode)")
		resume   = flag.Bool("resume", false, "sweep mode: skip jobs already completed in the -out file and append the rest")
		seeds    = flag.Int("seeds", 1, "sweep mode: replicate seeds per grid cell")
		timeout  = flag.Duration("job-timeout", 0, "sweep mode: per-job wall-clock cap enforced by context cancellation, e.g. 30s (0 = none)")
		variants = flag.String("variants", "", `sweep mode: comma-separated registry variant names to run instead of the full roster (ASAP always included), e.g. "pressWR-LS,slackR"`)
		zones    = flag.Int("zones", 1, "multi-zone scenario family: clusters split round-robin into N grid zones with rotated per-zone scenarios (1 = the paper's single-zone grid; also used by -only mapping)")
		mappings = flag.String("mappings", "", `sweep mode: comma-separated mapping roster for the mapping-ablation family, e.g. "fixed,zonegreen,map-search" or "all" (empty = fixed mapping only; policy cells get /m<policy> job keys)`)
		listVar  = flag.Bool("list-variants", false, "print the variant registry (canonical name per line) and exit")
		arrRates = flag.String("arrival-rates", "0.5,1,2", "-only arrival: comma-separated load factors (expected arrivals per ASAP makespan; cells get /a<rate> job keys)")
		arrZones = flag.String("arrival-zones", "2,4", "-only arrival: comma-separated zone counts to sweep")
		arrivals = flag.Int("arrivals", 12, "-only arrival: Poisson trace length per cell")
	)
	flag.Parse()
	if *listVar {
		printVariants()
		return
	}
	// Ctrl-C / SIGTERM cancels the context: in-flight scheduling observes
	// it and returns, sweep mode leaves a resumable JSONL prefix behind.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	var err error
	if *parallel > 0 {
		err = runSweep(ctx, *maxTasks, *seed, *parallel, *outDir, *resume, *seeds, *zones, *timeout, *variants, *mappings, *quiet)
	} else {
		err = run2(ctx, *maxTasks, *seed, *workers, *outDir, *only, *zones, *quiet, *saveTo,
			arrivalOpts{rates: *arrRates, zones: *arrZones, arrivals: *arrivals})
	}
	if err != nil {
		if errors.Is(err, cawosched.ErrCanceled) {
			fmt.Fprintln(os.Stderr, "experiments: interrupted (partial results kept; sweep mode: rerun with -resume)")
			os.Exit(130)
		}
		// Classified scheduler failures carry their stable machine-readable
		// code (the same codes the schedd HTTP API returns).
		if code := cawosched.ErrorCode(err); code != "" {
			fmt.Fprintf(os.Stderr, "experiments: [%s] %v\n", code, err)
		} else {
			fmt.Fprintln(os.Stderr, "experiments:", err)
		}
		os.Exit(1)
	}
}

// printVariants prints the registry in canonical order: the source of
// truth for names accepted by -variants and stored in sweep JSONL records.
func printVariants() {
	for _, name := range cawosched.VariantNames() {
		fmt.Println(name)
	}
}

// selectRoster resolves the -variants flag against the registry; an empty
// flag keeps the full 17-algorithm roster (ASAP + 16 variants).
func selectRoster(variants string) ([]experiments.Algorithm, error) {
	all := experiments.Algorithms()
	if variants == "" {
		return all, nil
	}
	byName := make(map[string]experiments.Algorithm, len(all))
	for _, a := range all {
		byName[a.Name] = a
	}
	roster := []experiments.Algorithm{byName[experiments.BaselineName]}
	seen := map[string]bool{}
	for _, raw := range strings.Split(variants, ",") {
		name := strings.TrimSpace(raw)
		if name == "" || strings.EqualFold(name, experiments.BaselineName) {
			continue
		}
		opt, err := cawosched.LookupVariant(name)
		if err != nil {
			return nil, fmt.Errorf("%w (see -list-variants)", err)
		}
		if seen[opt.Name()] {
			continue // duplicate names would emit duplicate job keys
		}
		seen[opt.Name()] = true
		roster = append(roster, byName[opt.Name()])
	}
	return roster, nil
}

// selectMappings resolves the -mappings flag into the Spec.Mapping roster
// of the mapping-ablation family ("" = fixed mapping only).
func selectMappings(mappings string) ([]string, error) {
	if mappings == "" {
		return nil, nil
	}
	if mappings == "all" {
		return experiments.Mappings(), nil
	}
	var out []string
	seen := map[string]bool{}
	for _, raw := range strings.Split(mappings, ",") {
		name := strings.TrimSpace(raw)
		if name != "fixed" && name != experiments.MapSearch {
			pol, err := cawosched.ParseMappingPolicy(name)
			if err != nil {
				return nil, err
			}
			name = pol.String()
		}
		if name == "fixed" || name == cawosched.MapEFT.String() {
			name = "" // the fixed HEFT mapping is the legacy cell (and key)
		}
		if seen[name] {
			continue // duplicates would emit duplicate job keys
		}
		seen[name] = true
		out = append(out, name)
	}
	return out, nil
}

// runSweep is the -parallel path: grid generation, worker-pool execution
// with JSONL streaming/resume, then a paper-style aggregation over every
// record on disk (including ones from earlier resumed runs).
func runSweep(ctx context.Context, maxTasks int, seed uint64, parallel int, outPath string, resume bool, seeds, zones int, timeout time.Duration, variants, mappings string, quiet bool) error {
	if outPath == "" {
		outPath = "results.jsonl"
	}
	roster, err := selectRoster(variants)
	if err != nil {
		return err
	}
	mapRoster, err := selectMappings(mappings)
	if err != nil {
		return err
	}
	names := algoNames(roster)
	jobs := experiments.MappingGrid(maxTasks, seed, seeds, zones, mapRoster, names)

	var skip map[string]bool
	needNewline := false
	if resume {
		data, err := os.ReadFile(outPath)
		switch {
		case os.IsNotExist(err):
			// Nothing to resume; run fresh.
		case err != nil:
			return err
		default:
			recs, rerr := experiments.ReadSweepRecords(bytes.NewReader(data))
			if rerr != nil {
				return fmt.Errorf("resuming from %s: %w", outPath, rerr)
			}
			skip = experiments.SweepDoneKeys(recs)
			// A killed sweep can leave a torn final line. If it is a
			// complete record that only lost its newline, terminate it;
			// otherwise cut it so the stitched file stays valid JSONL
			// (the torn job re-runs — its key is not in the skip set).
			if i := bytes.LastIndexByte(data, '\n'); i+1 < len(data) {
				tail := bytes.TrimSpace(data[i+1:])
				if len(tail) > 0 && tail[0] == '{' && json.Valid(tail) {
					needNewline = true
				} else if err := os.Truncate(outPath, int64(i+1)); err != nil {
					return err
				}
			}
		}
	}

	mode := os.O_CREATE | os.O_WRONLY
	if resume {
		mode |= os.O_APPEND
	} else {
		mode |= os.O_TRUNC
	}
	f, err := os.OpenFile(outPath, mode, 0o644)
	if err != nil {
		return err
	}
	if needNewline {
		if _, err := f.WriteString("\n"); err != nil {
			f.Close()
			return err
		}
	}

	if !quiet {
		fmt.Printf("sweep: %d jobs (%d skipped), %d workers, streaming to %s\n",
			len(jobs), len(skip), parallel, outPath)
	}
	start := time.Now()
	progress := func(done, total int) {
		if !quiet && total > 0 && (done%100 == 0 || done == total) {
			fmt.Printf("  %d/%d jobs (%.0fs)\n", done, total, time.Since(start).Seconds())
		}
	}
	_, err = experiments.Sweep(ctx, jobs, roster, f, experiments.SweepOptions{
		Workers:  parallel,
		Timeout:  timeout,
		Skip:     skip,
		Progress: progress,
	})
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return err
	}
	if !quiet {
		fmt.Printf("sweep done in %s\n\n", time.Since(start).Round(time.Second))
	}

	// Aggregate everything on disk, so resumed sweeps report the union.
	rf, err := os.Open(outPath)
	if err != nil {
		return err
	}
	recs, err := experiments.ReadSweepRecords(rf)
	rf.Close()
	if err != nil {
		return err
	}
	failed := 0
	for _, rec := range recs {
		if rec.Err != "" {
			failed++
		}
	}
	if failed > 0 {
		fmt.Printf("warning: %d/%d jobs failed (see err fields in %s)\n\n", failed, len(recs), outPath)
	}
	results, err := experiments.SweepResults(recs)
	if err != nil {
		return err
	}
	fmt.Println(experiments.Fig4MedianCostRatio(results, names).String())
	fmt.Println(experiments.Fig8RunningTime(results, names).String())
	if len(mapRoster) > 1 {
		fmt.Println(experiments.MappingTable(results).String())
	}
	return nil
}

// arrivalOpts carries the -only arrival flag values into run2.
type arrivalOpts struct {
	rates    string
	zones    string
	arrivals int
}

func defaultArrivalOpts() arrivalOpts {
	return arrivalOpts{rates: "0.5,1,2", zones: "2,4", arrivals: 12}
}

// parseFloatList parses a comma-separated list of numbers.
func parseFloatList(s string) ([]float64, error) {
	var out []float64
	for _, raw := range strings.Split(s, ",") {
		raw = strings.TrimSpace(raw)
		if raw == "" {
			continue
		}
		v, err := strconv.ParseFloat(raw, 64)
		if err != nil {
			return nil, fmt.Errorf("bad number %q", raw)
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty list")
	}
	return out, nil
}

// parseIntList parses a comma-separated list of integers.
func parseIntList(s string) ([]int, error) {
	fs, err := parseFloatList(s)
	if err != nil {
		return nil, err
	}
	out := make([]int, len(fs))
	for i, v := range fs {
		out[i] = int(v)
		if v != float64(out[i]) {
			return nil, fmt.Errorf("bad integer %g", v)
		}
	}
	return out, nil
}

// run keeps the original signature for tests; run2 adds result saving.
func run(maxTasks int, seed uint64, workers int, outDir, only string, quiet bool) error {
	return run2(context.Background(), maxTasks, seed, workers, outDir, only, 1, quiet, "", defaultArrivalOpts())
}

func run2(ctx context.Context, maxTasks int, seed uint64, workers int, outDir, only string, zones int, quiet bool, saveTo string, arr arrivalOpts) error {
	want := map[string]bool{}
	for _, name := range strings.Split(only, ",") {
		want[strings.TrimSpace(name)] = true
	}
	all := want["all"]
	selected := func(name string) bool { return all || want[name] }

	var emitted []*experiments.Table
	emit := func(name string, t *experiments.Table) {
		fmt.Println(t.String())
		if outDir != "" {
			path := filepath.Join(outDir, name+".csv")
			if err := os.WriteFile(path, []byte(t.CSV()), 0o644); err != nil {
				fmt.Fprintf(os.Stderr, "warning: writing %s: %v\n", path, err)
			}
		}
		emitted = append(emitted, t)
	}
	if outDir != "" {
		if err := os.MkdirAll(outDir, 0o755); err != nil {
			return err
		}
	}

	if selected("table1") {
		emit("table1", experiments.Table1Platform())
	}

	// The main corpus powers figures 1-6, 8, 12-17.
	needMain := false
	for _, name := range []string{"fig1", "fig2", "fig3", "fig4", "fig5", "fig6", "fig8", "fig12", "fig13", "fig14", "fig15", "fig16", "fig17"} {
		if selected(name) {
			needMain = true
		}
	}
	if needMain {
		specs := experiments.Corpus(maxTasks, seed)
		algos := experiments.LSAlgorithms()
		names := algoNames(algos)
		fmt.Printf("running main corpus: %d instances x %d algorithms (max %d tasks)\n",
			len(specs), len(algos), maxTasks)
		start := time.Now()
		progress := func(done, total int) {
			if !quiet && (done%25 == 0 || done == total) {
				fmt.Printf("  %d/%d instances (%.0fs)\n", done, total, time.Since(start).Seconds())
			}
		}
		results, err := experiments.Run(ctx, specs, algos, workers, progress)
		if err != nil {
			return err
		}
		fmt.Printf("main corpus done in %s\n\n", time.Since(start).Round(time.Second))
		if saveTo != "" {
			f, err := os.Create(saveTo)
			if err != nil {
				return err
			}
			if err := experiments.WriteResults(f, results); err != nil {
				f.Close()
				return err
			}
			if err := f.Close(); err != nil {
				return err
			}
			fmt.Printf("raw results saved to %s\n\n", saveTo)
		}

		if selected("fig1") {
			emit("fig1", experiments.Fig1Ranks(results, names))
		}
		if selected("fig2") {
			emit("fig2", experiments.Fig2PerfProfile(results, names))
		}
		if selected("fig3") {
			for i, t := range experiments.Fig3PerfProfileByDeadline(results, names) {
				emit(fmt.Sprintf("fig3_%d", i), t)
			}
		}
		if selected("fig4") {
			emit("fig4", experiments.Fig4MedianCostRatio(results, names))
		}
		if selected("fig5") {
			for i, t := range experiments.Fig5CostRatioByDeadline(results, names) {
				emit(fmt.Sprintf("fig5_%d", i), t)
			}
		}
		if selected("fig6") {
			emit("fig6", experiments.Fig6BoxPlots(results, names))
		}
		if selected("fig8") {
			emit("fig8", experiments.Fig8RunningTime(results, names))
		}
		if selected("fig12") {
			emit("fig12", experiments.Fig12RunningTimeLarge(results, names))
		}
		if selected("fig13") {
			emit("fig13", experiments.Fig13RunningTimeByDeadline(results, names))
		}
		if selected("fig14") {
			for i, t := range experiments.Fig14CostRatioByCluster(results, names) {
				emit(fmt.Sprintf("fig14_%d", i), t)
			}
		}
		if selected("fig15") {
			for i, t := range experiments.Fig15CostRatioByScenario(results, names) {
				emit(fmt.Sprintf("fig15_%d", i), t)
			}
		}
		if selected("fig16") {
			for i, t := range experiments.Fig16CostRatioBySize(results, names) {
				emit(fmt.Sprintf("fig16_%d", i), t)
			}
		}
		if selected("fig17") {
			for i, t := range experiments.Fig17PerfProfileByCluster(results, names) {
				emit(fmt.Sprintf("fig17_%d", i), t)
			}
		}
	}

	if selected("table2") {
		specs := experiments.AblationCorpus(maxTasks, seed)
		fmt.Printf("running ablation corpus (Table 2): %d instances x 17 algorithms\n", len(specs))
		start := time.Now()
		results, err := experiments.Run(ctx, specs, experiments.Algorithms(), workers, nil)
		if err != nil {
			return err
		}
		fmt.Printf("ablation done in %s\n\n", time.Since(start).Round(time.Second))
		emit("table2", experiments.Table2LocalSearchAblation(results))
	}

	if selected("fig7") {
		fmt.Println("running exact-comparison corpus (Figure 7)")
		t, err := experiments.Fig7ExactComparison(ctx, seed, experiments.LSAlgorithms(), 20_000_000)
		if err != nil {
			return err
		}
		emit("fig7", t)
	}

	// Ablations and the Section 7 extension run on a reduced corpus (they
	// multiply the per-instance work by the sweep size) and are opt-in:
	// they run only when named explicitly, not under "all".
	if want["ablations"] {
		cap := maxTasks
		if cap <= 0 || cap > 500 {
			cap = 500
		}
		specs := experiments.Corpus(cap, seed)
		fmt.Printf("running ablations on %d instances\n", len(specs))
		if t, err := experiments.AblationK(ctx, specs, []int{1, 2, 3, 4}, workers); err != nil {
			return err
		} else {
			emit("ablation_k", t)
		}
		if t, err := experiments.AblationMu(ctx, specs, []int64{1, 5, 10, 20}, workers); err != nil {
			return err
		} else {
			emit("ablation_mu", t)
		}
		if t, err := experiments.AblationImprovers(ctx, specs, workers); err != nil {
			return err
		} else {
			emit("ablation_improvers", t)
		}
		if t, err := experiments.AblationGreedies(ctx, specs, workers); err != nil {
			return err
		} else {
			emit("ablation_greedies", t)
		}
		if t, err := experiments.AblationOrdering(ctx, specs, workers); err != nil {
			return err
		} else {
			emit("ablation_ordering", t)
		}
		if t, err := experiments.ExtensionTwoPass(ctx, specs, workers); err != nil {
			return err
		} else {
			emit("extension_twopass", t)
		}
	}

	// The mapping ablation (fixed vs each policy vs map-search on the
	// multi-zone grid, plus the per-zone load-shift table) is opt-in:
	// every mapping multiplies the per-instance work.
	if want["mapping"] {
		cap := maxTasks
		if cap <= 0 || cap > 300 {
			cap = 300
		}
		zn := zones
		if zn < 2 {
			zn = 2
		}
		specs := experiments.MultiZoneCorpus(cap, seed, zn)
		fmt.Printf("running mapping ablation: %d instances x %d mappings (%d zones)\n",
			len(specs), len(experiments.Mappings()), zn)
		roster := []experiments.Algorithm{}
		for _, a := range experiments.LSAlgorithms() {
			if a.Name == experiments.BaselineName || a.Name == "pressWR-LS" {
				roster = append(roster, a)
			}
		}
		// The sweep engine, not Run: remapped cells with tight deadlines
		// can be legitimately infeasible (the mapping cannot meet the
		// fixed mapping's horizon), which the sweep records in-band while
		// the strict driver would abort the whole artifact.
		jobs := experiments.MappingGrid(cap, seed, 1, zn, experiments.Mappings(), algoNames(roster))
		results, err := experiments.Sweep(ctx, jobs, roster, io.Discard, experiments.SweepOptions{Workers: workers})
		if err != nil {
			return err
		}
		emit("mapping_ablation", experiments.MappingTable(results))
		if t, err := experiments.ZoneShiftTable(ctx, specs, workers); err != nil {
			return err
		} else {
			emit("zone_shift", t)
		}
	}

	// The online arrival sweep (Poisson arrivals through the tenancy
	// manager's admission control and rolling horizon) is opt-in: each
	// cell simulates a full multi-workflow trace.
	if want["arrival"] {
		rates, err := parseFloatList(arr.rates)
		if err != nil {
			return fmt.Errorf("-arrival-rates: %w", err)
		}
		zoneCounts, err := parseIntList(arr.zones)
		if err != nil {
			return fmt.Errorf("-arrival-zones: %w", err)
		}
		specs := experiments.ArrivalGrid(maxTasks, seed, rates, zoneCounts, arr.arrivals)
		fmt.Printf("running online arrival sweep: %d cells (%d load factors x %d zone counts)\n",
			len(specs), len(rates), len(zoneCounts))
		start := time.Now()
		progress := func(done, total int) {
			if !quiet && (done%4 == 0 || done == total) {
				fmt.Printf("  %d/%d cells (%.0fs)\n", done, total, time.Since(start).Seconds())
			}
		}
		results, err := experiments.RunArrivals(ctx, specs, workers, progress)
		if err != nil {
			return err
		}
		fmt.Printf("arrival sweep done in %s\n\n", time.Since(start).Round(time.Second))
		emit("arrival_frontier", experiments.ArrivalFrontier(results))
	}

	// Robustness studies (runtime noise, forecast error) are opt-in too.
	if want["robustness"] {
		cap := maxTasks
		if cap <= 0 || cap > 500 {
			cap = 500
		}
		specs := experiments.Corpus(cap, seed)
		fmt.Printf("running robustness studies on %d instances\n", len(specs))
		if t, err := experiments.RobustnessRuntime(ctx, specs, []float64{0, 0.1, 0.2, 0.4}, workers); err != nil {
			return err
		} else {
			emit("robustness_runtime", t)
		}
		if t, err := experiments.RobustnessForecast(ctx, specs, []float64{0, 0.1, 0.25, 0.5}, workers); err != nil {
			return err
		} else {
			emit("robustness_forecast", t)
		}
	}

	if len(emitted) == 0 {
		return fmt.Errorf("no artifacts selected by -only=%q", only)
	}
	return nil
}

func algoNames(algos []experiments.Algorithm) []string {
	names := make([]string, len(algos))
	for i, a := range algos {
		names[i] = a.Name
	}
	return names
}
