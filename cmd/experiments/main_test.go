package main

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunSingleArtifact(t *testing.T) {
	dir := t.TempDir()
	if err := run(150, 42, 0, dir, "table1", true); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "table1.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if len(data) == 0 {
		t.Error("table1.csv empty")
	}
}

func TestRunTinyCorpusFigures(t *testing.T) {
	dir := t.TempDir()
	// A tiny max-tasks keeps this fast: only the real bacass workflow
	// fits under 100 tasks.
	if err := run(100, 42, 0, dir, "fig1,fig4", true); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"fig1.csv", "fig4.csv"} {
		if _, err := os.Stat(filepath.Join(dir, name)); err != nil {
			t.Errorf("%s not written: %v", name, err)
		}
	}
}

func TestRunArrivalArtifact(t *testing.T) {
	dir := t.TempDir()
	// Two load factors × two zone counts, tiny workflows and traces so the
	// online simulation stays fast.
	arr := arrivalOpts{rates: "1,4", zones: "1,2", arrivals: 3}
	if err := run2(context.Background(), 30, 42, 0, dir, "arrival", 1, true, "", arr); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "arrival_frontier.csv"))
	if err != nil {
		t.Fatal(err)
	}
	csv := string(data)
	// Header plus one row per (rate, zones) cell.
	if got := len(splitLines(data)); got != 5 {
		t.Fatalf("arrival_frontier.csv has %d lines, want 5:\n%s", got, csv)
	}
	for _, key := range []string{"/a1|", "/a4|", "/z2/a1|", "/z2/a4|"} {
		if !strings.Contains(csv, key) {
			t.Errorf("frontier CSV missing cell %q:\n%s", key, csv)
		}
	}

	if _, err := parseFloatList("1,,oops"); err == nil {
		t.Error("bad -arrival-rates accepted")
	}
	if _, err := parseIntList("1.5"); err == nil {
		t.Error("fractional -arrival-zones accepted")
	}
}

func TestRunUnknownArtifact(t *testing.T) {
	if err := run(100, 42, 0, "", "figZZ", true); err == nil {
		t.Error("unknown artifact selection accepted")
	}
}

func TestRunSweepStreamsAndResumes(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "results.jsonl")
	if err := runSweep(context.Background(), 100, 42, 4, out, false, 1, 1, 0, "", "", true); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	first := string(data)
	if len(first) == 0 {
		t.Fatal("sweep wrote no records")
	}
	// Resuming over a complete file must run zero jobs and leave it as is.
	if err := runSweep(context.Background(), 100, 42, 4, out, true, 1, 1, 0, "", "", true); err != nil {
		t.Fatal(err)
	}
	data, err = os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != first {
		t.Error("resume over a complete sweep modified the results file")
	}
}

func TestRunSweepResumesTornFile(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "results.jsonl")
	if err := runSweep(context.Background(), 100, 42, 2, out, false, 1, 1, 0, "", "", true); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	fullLines := len(splitLines(data))
	// Simulate a kill mid-write: keep 10 full lines plus half a record.
	lines := splitLines(data)
	torn := append([]byte{}, []byte(joinLines(lines[:10]))...)
	torn = append(torn, lines[10][:len(lines[10])/2]...)
	if err := os.WriteFile(out, torn, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := runSweep(context.Background(), 100, 42, 2, out, true, 1, 1, 0, "", "", true); err != nil {
		t.Fatalf("resume over torn file: %v", err)
	}
	data, err = os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(splitLines(data)); got != fullLines {
		t.Errorf("recovered file has %d lines, want %d", got, fullLines)
	}
	// Every line must be valid JSON again (the torn half-record is gone).
	for i, l := range splitLines(data) {
		if len(l) == 0 || l[0] != '{' || l[len(l)-1] != '}' {
			t.Fatalf("line %d malformed after recovery: %q", i, l)
		}
	}
}

func splitLines(data []byte) []string {
	return strings.Split(strings.TrimSuffix(string(data), "\n"), "\n")
}

func joinLines(lines []string) string {
	return strings.Join(lines, "\n") + "\n"
}

func TestAlgoNames(t *testing.T) {
	// Smoke check on the helper used for grid headers.
	names := algoNames(nil)
	if len(names) != 0 {
		t.Errorf("algoNames(nil) = %v", names)
	}
}

func TestSelectRoster(t *testing.T) {
	full, err := selectRoster("")
	if err != nil || len(full) != 17 {
		t.Fatalf("empty -variants → %d algos, err %v; want full 17", len(full), err)
	}
	sub, err := selectRoster("pressWR-LS, slackR")
	if err != nil {
		t.Fatal(err)
	}
	if len(sub) != 3 || sub[0].Name != "ASAP" || sub[1].Name != "pressWR-LS" || sub[2].Name != "slackR" {
		names := algoNames(sub)
		t.Fatalf("roster = %v, want [ASAP pressWR-LS slackR]", names)
	}
	if _, err := selectRoster("pressZZ"); err == nil {
		t.Error("unknown variant accepted by -variants")
	}
}
