package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestRunSingleArtifact(t *testing.T) {
	dir := t.TempDir()
	if err := run(150, 42, 0, dir, "table1", true); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "table1.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if len(data) == 0 {
		t.Error("table1.csv empty")
	}
}

func TestRunTinyCorpusFigures(t *testing.T) {
	dir := t.TempDir()
	// A tiny max-tasks keeps this fast: only the real bacass workflow
	// fits under 100 tasks.
	if err := run(100, 42, 0, dir, "fig1,fig4", true); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"fig1.csv", "fig4.csv"} {
		if _, err := os.Stat(filepath.Join(dir, name)); err != nil {
			t.Errorf("%s not written: %v", name, err)
		}
	}
}

func TestRunUnknownArtifact(t *testing.T) {
	if err := run(100, 42, 0, "", "figZZ", true); err == nil {
		t.Error("unknown artifact selection accepted")
	}
}

func TestAlgoNames(t *testing.T) {
	// Smoke check on the helper used for grid headers.
	names := algoNames(nil)
	if len(names) != 0 {
		t.Errorf("algoNames(nil) = %v", names)
	}
}
