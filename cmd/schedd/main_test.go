package main

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	cawosched "repro"
	"repro/internal/wire"
)

func TestBuildCluster(t *testing.T) {
	small, label, err := buildCluster("small", "", 42)
	if err != nil || label != "small" || small.NumCompute() != 72 {
		t.Fatalf("small: %v %q %d", err, label, small.NumCompute())
	}
	large, _, err := buildCluster("large", "", 42)
	if err != nil || large.NumCompute() != 144 {
		t.Fatalf("large: %v", err)
	}
	if _, _, err := buildCluster("medium", "", 42); err == nil {
		t.Error("unknown cluster name accepted")
	}

	// A cluster file in the wire format round-trips into the same platform.
	path := filepath.Join(t.TempDir(), "cluster.json")
	data, err := json.Marshal(wire.FromCluster(cawosched.SmallCluster(9)))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	fromFile, _, err := buildCluster("ignored", path, 0)
	if err != nil {
		t.Fatal(err)
	}
	if fromFile.NumCompute() != 72 || fromFile.LinkSeed() != 9 {
		t.Errorf("cluster file: %d compute, link seed %d", fromFile.NumCompute(), fromFile.LinkSeed())
	}

	if _, _, err := buildCluster("", filepath.Join(t.TempDir(), "missing.json"), 0); err == nil {
		t.Error("missing cluster file accepted")
	}
}

// TestServeSmoke boots the real binary path on an ephemeral port, drives
// one request through it, and shuts it down gracefully via context cancel.
func TestServeSmoke(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	ready := make(chan string, 1)
	done := make(chan error, 1)
	go func() {
		done <- run(ctx, "127.0.0.1:0", "small", "", 7, 30*time.Second, 2, 16, 5*time.Second, 0, ready)
	}()

	var addr string
	select {
	case addr = <-ready:
	case err := <-done:
		t.Fatalf("server exited early: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("server never became ready")
	}

	resp, err := http.Get("http://" + addr + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(raw), `"ok"`) {
		t.Fatalf("healthz: %d %s", resp.StatusCode, raw)
	}

	wf, err := cawosched.GenerateWorkflow(cawosched.Bacass, 30, 1)
	if err != nil {
		t.Fatal(err)
	}
	body, err := json.Marshal(wire.SolveRequest{Workflow: wire.FromDAG(wf), Variant: "slack", Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	resp, err = http.Post("http://"+addr+"/v1/solve", "application/json", strings.NewReader(string(body)))
	if err != nil {
		t.Fatal(err)
	}
	raw, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("solve: %d %s", resp.StatusCode, raw)
	}
	var sr wire.SolveResponse
	if err := json.Unmarshal(raw, &sr); err != nil {
		t.Fatal(err)
	}
	if sr.Cost < 0 || len(sr.Schedule) == 0 {
		t.Errorf("implausible solve response: %+v", sr)
	}

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("graceful shutdown returned %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("server did not shut down")
	}
}
