package main

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	cawosched "repro"
	"repro/internal/wire"
)

func TestBuildCluster(t *testing.T) {
	small, label, err := buildCluster("small", "", 1, 42)
	if err != nil || label != "small" || small.NumCompute() != 72 {
		t.Fatalf("small: %v %q %d", err, label, small.NumCompute())
	}
	if small.NumZones() != 1 {
		t.Errorf("default small cluster has %d zones", small.NumZones())
	}
	large, _, err := buildCluster("large", "", 0, 42)
	if err != nil || large.NumCompute() != 144 || large.NumZones() != 1 {
		t.Fatalf("large: %v", err)
	}
	if _, _, err := buildCluster("medium", "", 1, 42); err == nil {
		t.Error("unknown cluster name accepted")
	}

	// -zones splits the paper clusters round-robin.
	zoned, _, err := buildCluster("small", "", 3, 42)
	if err != nil || zoned.NumZones() != 3 {
		t.Fatalf("zoned: %v, zones %d", err, zoned.NumZones())
	}

	// A cluster file in the wire format round-trips into the same
	// platform, zones included; the -zones flag is ignored for files.
	path := filepath.Join(t.TempDir(), "cluster.json")
	data, err := json.Marshal(wire.FromCluster(cawosched.SmallZonedCluster(9, 2)))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	fromFile, _, err := buildCluster("ignored", path, 5, 0)
	if err != nil {
		t.Fatal(err)
	}
	if fromFile.NumCompute() != 72 || fromFile.LinkSeed() != 9 || fromFile.NumZones() != 2 {
		t.Errorf("cluster file: %d compute, link seed %d, %d zones",
			fromFile.NumCompute(), fromFile.LinkSeed(), fromFile.NumZones())
	}

	if _, _, err := buildCluster("", filepath.Join(t.TempDir(), "missing.json"), 1, 0); err == nil {
		t.Error("missing cluster file accepted")
	}
}

// TestServeSmoke boots the real binary path on an ephemeral port, drives
// one request through it, and shuts it down gracefully via context cancel.
func TestServeSmoke(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	ready := make(chan string, 1)
	done := make(chan error, 1)
	go func() {
		done <- run(ctx, "127.0.0.1:0", "small", "", 1, "", 7, 30*time.Second, 2, 2, 16, 5*time.Second, 0, ready)
	}()

	var addr string
	select {
	case addr = <-ready:
	case err := <-done:
		t.Fatalf("server exited early: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("server never became ready")
	}

	resp, err := http.Get("http://" + addr + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(raw), `"ok"`) {
		t.Fatalf("healthz: %d %s", resp.StatusCode, raw)
	}

	wf, err := cawosched.GenerateWorkflow(cawosched.Bacass, 30, 1)
	if err != nil {
		t.Fatal(err)
	}
	body, err := json.Marshal(wire.SolveRequest{Workflow: wire.FromDAG(wf), Variant: "slack", Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	resp, err = http.Post("http://"+addr+"/v1/solve", "application/json", strings.NewReader(string(body)))
	if err != nil {
		t.Fatal(err)
	}
	raw, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("solve: %d %s", resp.StatusCode, raw)
	}
	var sr wire.SolveResponse
	if err := json.Unmarshal(raw, &sr); err != nil {
		t.Fatal(err)
	}
	if sr.Cost < 0 || len(sr.Schedule) == 0 {
		t.Errorf("implausible solve response: %+v", sr)
	}

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("graceful shutdown returned %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("server did not shut down")
	}
}
