package main

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	cawosched "repro"
	"repro/internal/wire"
)

func TestBuildCluster(t *testing.T) {
	small, label, err := buildCluster("small", "", 1, 42)
	if err != nil || label != "small" || small.NumCompute() != 72 {
		t.Fatalf("small: %v %q %d", err, label, small.NumCompute())
	}
	if small.NumZones() != 1 {
		t.Errorf("default small cluster has %d zones", small.NumZones())
	}
	large, _, err := buildCluster("large", "", 0, 42)
	if err != nil || large.NumCompute() != 144 || large.NumZones() != 1 {
		t.Fatalf("large: %v", err)
	}
	if _, _, err := buildCluster("medium", "", 1, 42); err == nil {
		t.Error("unknown cluster name accepted")
	}

	// -zones splits the paper clusters round-robin.
	zoned, _, err := buildCluster("small", "", 3, 42)
	if err != nil || zoned.NumZones() != 3 {
		t.Fatalf("zoned: %v, zones %d", err, zoned.NumZones())
	}

	// A cluster file in the wire format round-trips into the same
	// platform, zones included; the -zones flag is ignored for files.
	path := filepath.Join(t.TempDir(), "cluster.json")
	data, err := json.Marshal(wire.FromCluster(cawosched.SmallZonedCluster(9, 2)))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	fromFile, _, err := buildCluster("ignored", path, 5, 0)
	if err != nil {
		t.Fatal(err)
	}
	if fromFile.NumCompute() != 72 || fromFile.LinkSeed() != 9 || fromFile.NumZones() != 2 {
		t.Errorf("cluster file: %d compute, link seed %d, %d zones",
			fromFile.NumCompute(), fromFile.LinkSeed(), fromFile.NumZones())
	}

	if _, _, err := buildCluster("", filepath.Join(t.TempDir(), "missing.json"), 1, 0); err == nil {
		t.Error("missing cluster file accepted")
	}
}

// TestServeSmoke boots the real binary path on an ephemeral port, drives
// one request through it, and shuts it down gracefully via context cancel.
func TestServeSmoke(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	ready := make(chan string, 1)
	done := make(chan error, 1)
	opt := options{
		addr: "127.0.0.1:0", clusterName: "small", zones: 1, seed: 7,
		reqTimeout: 30 * time.Second, batchWork: 2, searchWork: 2,
		maxBatch: 16, grace: 5 * time.Second,
	}
	go func() {
		done <- run(ctx, opt, ready)
	}()

	var addr string
	select {
	case addr = <-ready:
	case err := <-done:
		t.Fatalf("server exited early: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("server never became ready")
	}

	resp, err := http.Get("http://" + addr + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(raw), `"ok"`) {
		t.Fatalf("healthz: %d %s", resp.StatusCode, raw)
	}

	wf, err := cawosched.GenerateWorkflow(cawosched.Bacass, 30, 1)
	if err != nil {
		t.Fatal(err)
	}
	body, err := json.Marshal(wire.SolveRequest{Workflow: wire.FromDAG(wf), Variant: "slack", Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	resp, err = http.Post("http://"+addr+"/v1/solve", "application/json", strings.NewReader(string(body)))
	if err != nil {
		t.Fatal(err)
	}
	raw, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("solve: %d %s", resp.StatusCode, raw)
	}
	var sr wire.SolveResponse
	if err := json.Unmarshal(raw, &sr); err != nil {
		t.Fatal(err)
	}
	if sr.Cost < 0 || len(sr.Schedule) == 0 {
		t.Errorf("implausible solve response: %+v", sr)
	}

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("graceful shutdown returned %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("server did not shut down")
	}
}

// TestBuildSupply pins the supply-flag spellings: a single scenario fans
// out to every zone, a comma list must match the zone count, and unknown
// scenarios or horizons fail fast at startup.
func TestBuildSupply(t *testing.T) {
	cluster := cawosched.SmallZonedCluster(7, 3)
	zs, err := buildSupply(cluster, "S2", 480, 24, 42)
	if err != nil || zs.NumZones() != 3 || zs.T() != 480 {
		t.Fatalf("single scenario: %v %+v", err, zs)
	}
	zs2, err := buildSupply(cluster, "S1, S2,S3", 480, 24, 42)
	if err != nil || zs2.NumZones() != 3 {
		t.Fatalf("comma list: %v", err)
	}
	if zs.Digest() == zs2.Digest() {
		t.Error("distinct scenario lists generated identical supplies")
	}
	if _, err := buildSupply(cluster, "S1,S2", 480, 24, 42); err == nil {
		t.Error("2 scenarios for 3 zones accepted")
	}
	if _, err := buildSupply(cluster, "S9", 480, 24, 42); err == nil {
		t.Error("unknown scenario accepted")
	}
	if _, err := buildSupply(cluster, "S1", 0, 24, 42); err == nil {
		t.Error("zero horizon accepted")
	}
}

// TestServeOnlineSmoke boots the daemon with online scheduling and the
// rolling-horizon loop enabled, drives the submit/status/cancel flow over
// HTTP, and shuts down gracefully with the loop running.
func TestServeOnlineSmoke(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	ready := make(chan string, 1)
	done := make(chan error, 1)
	opt := options{
		addr: "127.0.0.1:0", clusterName: "small", zones: 2, seed: 7,
		reqTimeout: 30 * time.Second, batchWork: 2, searchWork: 2,
		maxBatch: 16, grace: 5 * time.Second,
		supplyScenario: "S1,S3", supplyHorizon: 4320, supplyIntervals: 24,
		supplySeed: 7, timeUnit: 50 * time.Millisecond,
		rebalanceEvery: 20 * time.Millisecond,
	}
	go func() {
		done <- run(ctx, opt, ready)
	}()
	var addr string
	select {
	case addr = <-ready:
	case err := <-done:
		t.Fatalf("server exited early: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("server never became ready")
	}
	base := "http://" + addr

	resp, err := http.Get(base + "/v1/zones")
	if err != nil {
		t.Fatal(err)
	}
	var zr wire.ZonesResponse
	if err := json.NewDecoder(resp.Body).Decode(&zr); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || len(zr.Names) != 2 || zr.Horizon != 4320 || zr.Digest == "" {
		t.Fatalf("zones: %d %+v", resp.StatusCode, zr)
	}

	wf, err := cawosched.GenerateWorkflow(cawosched.Bacass, 30, 1)
	if err != nil {
		t.Fatal(err)
	}
	body, err := json.Marshal(wire.SubmitWorkflowRequest{Workflow: wire.FromDAG(wf), DeadlineFactor: 4})
	if err != nil {
		t.Fatal(err)
	}
	resp, err = http.Post(base+"/v1/workflows", "application/json", strings.NewReader(string(body)))
	if err != nil {
		t.Fatal(err)
	}
	var st wire.WorkflowResponse
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated || st.ID == "" {
		t.Fatalf("submit: %d %+v", resp.StatusCode, st)
	}

	// Let the wall clock and the rolling horizon tick at least once.
	time.Sleep(60 * time.Millisecond)

	resp, err = http.Get(base + "/v1/workflows/" + st.ID)
	if err != nil {
		t.Fatal(err)
	}
	var got wire.WorkflowResponse
	if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || got.ID != st.ID {
		t.Fatalf("status: %d %+v", resp.StatusCode, got)
	}
	if got.Cost > got.AdmittedCost {
		t.Errorf("rolling horizon increased cost: %d > admitted %d", got.Cost, got.AdmittedCost)
	}

	req, err := http.NewRequest(http.MethodDelete, base+"/v1/workflows/"+st.ID, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cancel: %d", resp.StatusCode)
	}

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("graceful shutdown returned %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("server did not shut down")
	}
}
