package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	cawosched "repro"
	"repro/internal/obs"
	"repro/internal/wire"
)

func TestBuildCluster(t *testing.T) {
	small, label, err := buildCluster("small", "", 1, 42)
	if err != nil || label != "small" || small.NumCompute() != 72 {
		t.Fatalf("small: %v %q %d", err, label, small.NumCompute())
	}
	if small.NumZones() != 1 {
		t.Errorf("default small cluster has %d zones", small.NumZones())
	}
	large, _, err := buildCluster("large", "", 0, 42)
	if err != nil || large.NumCompute() != 144 || large.NumZones() != 1 {
		t.Fatalf("large: %v", err)
	}
	if _, _, err := buildCluster("medium", "", 1, 42); err == nil {
		t.Error("unknown cluster name accepted")
	}

	// -zones splits the paper clusters round-robin.
	zoned, _, err := buildCluster("small", "", 3, 42)
	if err != nil || zoned.NumZones() != 3 {
		t.Fatalf("zoned: %v, zones %d", err, zoned.NumZones())
	}

	// A cluster file in the wire format round-trips into the same
	// platform, zones included; the -zones flag is ignored for files.
	path := filepath.Join(t.TempDir(), "cluster.json")
	data, err := json.Marshal(wire.FromCluster(cawosched.SmallZonedCluster(9, 2)))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	fromFile, _, err := buildCluster("ignored", path, 5, 0)
	if err != nil {
		t.Fatal(err)
	}
	if fromFile.NumCompute() != 72 || fromFile.LinkSeed() != 9 || fromFile.NumZones() != 2 {
		t.Errorf("cluster file: %d compute, link seed %d, %d zones",
			fromFile.NumCompute(), fromFile.LinkSeed(), fromFile.NumZones())
	}

	if _, _, err := buildCluster("", filepath.Join(t.TempDir(), "missing.json"), 1, 0); err == nil {
		t.Error("missing cluster file accepted")
	}
}

// TestServeSmoke boots the real binary path on an ephemeral port, drives
// one request through it, and shuts it down gracefully via context cancel.
func TestServeSmoke(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	ready := make(chan string, 1)
	done := make(chan error, 1)
	opt := options{
		addr: "127.0.0.1:0", clusterName: "small", zones: 1, seed: 7,
		reqTimeout: 30 * time.Second, batchWork: 2, searchWork: 2,
		maxBatch: 16, grace: 5 * time.Second,
	}
	go func() {
		done <- run(ctx, opt, ready)
	}()

	var addr string
	select {
	case addr = <-ready:
	case err := <-done:
		t.Fatalf("server exited early: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("server never became ready")
	}

	resp, err := http.Get("http://" + addr + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(raw), `"ok"`) {
		t.Fatalf("healthz: %d %s", resp.StatusCode, raw)
	}

	wf, err := cawosched.GenerateWorkflow(cawosched.Bacass, 30, 1)
	if err != nil {
		t.Fatal(err)
	}
	body, err := json.Marshal(wire.SolveRequest{Workflow: wire.FromDAG(wf), Variant: "slack", Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	resp, err = http.Post("http://"+addr+"/v1/solve", "application/json", strings.NewReader(string(body)))
	if err != nil {
		t.Fatal(err)
	}
	raw, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("solve: %d %s", resp.StatusCode, raw)
	}
	var sr wire.SolveResponse
	if err := json.Unmarshal(raw, &sr); err != nil {
		t.Fatal(err)
	}
	if sr.Cost < 0 || len(sr.Schedule) == 0 {
		t.Errorf("implausible solve response: %+v", sr)
	}

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("graceful shutdown returned %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("server did not shut down")
	}
}

// tierMetricSum extracts the summed value of a labeled counter family
// from a Prometheus exposition.
func tierMetricSum(t *testing.T, exposition, family string) float64 {
	t.Helper()
	var sum float64
	for _, line := range strings.Split(exposition, "\n") {
		if !strings.HasPrefix(line, family+"{") {
			continue
		}
		fields := strings.Fields(line)
		var v float64
		if _, err := fmt.Sscanf(fields[len(fields)-1], "%g", &v); err != nil {
			t.Fatalf("parsing %q: %v", line, err)
		}
		sum += v
	}
	return sum
}

func scrapeMetrics(t *testing.T, addr string) string {
	t.Helper()
	resp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	return string(raw)
}

// TestServeFleetSmoke is the daemon-level fleet acceptance test: two
// schedd processes' worth of daemons sharing a peers: ring. A request
// solved on A is served on B as a cross-process tier hit with zero tier
// errors; then A is killed mid-run and every further request on B still
// answers 200 — lookups for A-owned keys degrade to local misses and A's
// breaker opens.
func TestServeFleetSmoke(t *testing.T) {
	addrA, addrB := freeAddr(t), freeAddr(t)
	spec := "peers:" + addrA + "," + addrB
	boot := func(addr string) (context.CancelFunc, chan error) {
		ctx, cancel := context.WithCancel(context.Background())
		ready := make(chan string, 1)
		done := make(chan error, 1)
		opt := options{
			addr: addr, clusterName: "small", zones: 1, seed: 7,
			reqTimeout: 30 * time.Second, batchWork: 2, searchWork: 2,
			maxBatch: 16, grace: 5 * time.Second,
			solveCacheLimit: 1024, planCacheLimit: 1024,
			cacheTier: spec, coalesce: true,
		}
		go func() { done <- run(ctx, opt, ready) }()
		select {
		case <-ready:
		case err := <-done:
			t.Fatalf("daemon %s exited early: %v", addr, err)
		case <-time.After(10 * time.Second):
			t.Fatalf("daemon %s never became ready", addr)
		}
		return cancel, done
	}
	cancelA, doneA := boot(addrA)
	cancelB, doneB := boot(addrB)
	defer func() {
		cancelB()
		select {
		case <-doneB:
		case <-time.After(10 * time.Second):
			t.Error("daemon B did not shut down")
		}
	}()

	wf, err := cawosched.GenerateWorkflow(cawosched.Bacass, 30, 1)
	if err != nil {
		t.Fatal(err)
	}
	solve := func(addr string, seed uint64) wire.SolveResponse {
		t.Helper()
		body, err := json.Marshal(wire.SolveRequest{Workflow: wire.FromDAG(wf), Variant: "slack", Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.Post("http://"+addr+"/v1/solve", "application/json", strings.NewReader(string(body)))
		if err != nil {
			t.Fatalf("solve on %s: %v", addr, err)
		}
		raw, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("solve on %s: %d %s", addr, resp.StatusCode, raw)
		}
		var sr wire.SolveResponse
		if err := json.Unmarshal(raw, &sr); err != nil {
			t.Fatal(err)
		}
		return sr
	}

	// Solve on A, wait for the async record shipment, then solve the same
	// request on B: a cross-process tier hit.
	if sr := solve(addrA, 1); sr.CacheHit {
		t.Error("cold solve on A reported a hit")
	}
	deadline := time.Now().Add(10 * time.Second)
	for tierMetricSum(t, scrapeMetrics(t, addrA), "schedd_cache_tier_puts_total") < 1 {
		if time.Now().After(deadline) {
			t.Fatal("A never shipped its record to the ring owner")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if sr := solve(addrB, 1); !sr.CacheHit {
		t.Error("B's first solve of A's request was not a cross-process hit")
	}
	mB := scrapeMetrics(t, addrB)
	if hits := tierMetricSum(t, mB, "schedd_cache_tier_hits_total"); hits < 1 {
		t.Errorf("B tier hits = %g, want >= 1", hits)
	}
	if !strings.Contains(mB, "schedd_solver_tier_hits_total 1") {
		t.Error("B's solver counter missed the tier hit")
	}
	if errs := tierMetricSum(t, mB, "schedd_cache_tier_errors_total") +
		tierMetricSum(t, mB, "schedd_cache_tier_timeouts_total"); errs != 0 {
		t.Errorf("healthy fleet recorded %g tier errors/timeouts on B", errs)
	}

	// Kill A mid-run. Every further request on B must still answer 200 —
	// A-owned keys degrade to local misses — and A's breaker on B opens
	// once enough lookups have failed.
	cancelA()
	select {
	case err := <-doneA:
		if err != nil {
			t.Fatalf("daemon A shutdown: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("daemon A did not shut down")
	}
	breakerOpen := false
	for seed := uint64(100); seed < 140; seed++ {
		solve(addrB, seed) // must not error whoever owns the key
		if strings.Contains(scrapeMetrics(t, addrB), `schedd_cache_tier_breaker_open{peer="`+addrA+`"} 1`) {
			breakerOpen = true
			break
		}
	}
	if !breakerOpen {
		t.Error("A's breaker on B never opened after 40 solves against a dead peer")
	}
}

// TestBuildSupply pins the supply-flag spellings: a single scenario fans
// out to every zone, a comma list must match the zone count, and unknown
// scenarios or horizons fail fast at startup.
func TestBuildSupply(t *testing.T) {
	cluster := cawosched.SmallZonedCluster(7, 3)
	zs, err := buildSupply(cluster, "S2", 480, 24, 42)
	if err != nil || zs.NumZones() != 3 || zs.T() != 480 {
		t.Fatalf("single scenario: %v %+v", err, zs)
	}
	zs2, err := buildSupply(cluster, "S1, S2,S3", 480, 24, 42)
	if err != nil || zs2.NumZones() != 3 {
		t.Fatalf("comma list: %v", err)
	}
	if zs.Digest() == zs2.Digest() {
		t.Error("distinct scenario lists generated identical supplies")
	}
	if _, err := buildSupply(cluster, "S1,S2", 480, 24, 42); err == nil {
		t.Error("2 scenarios for 3 zones accepted")
	}
	if _, err := buildSupply(cluster, "S9", 480, 24, 42); err == nil {
		t.Error("unknown scenario accepted")
	}
	if _, err := buildSupply(cluster, "S1", 0, 24, 42); err == nil {
		t.Error("zero horizon accepted")
	}
}

// TestServeOnlineSmoke boots the daemon with online scheduling and the
// rolling-horizon loop enabled, drives the submit/status/cancel flow over
// HTTP, and shuts down gracefully with the loop running.
func TestServeOnlineSmoke(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	ready := make(chan string, 1)
	done := make(chan error, 1)
	opt := options{
		addr: "127.0.0.1:0", clusterName: "small", zones: 2, seed: 7,
		reqTimeout: 30 * time.Second, batchWork: 2, searchWork: 2,
		maxBatch: 16, grace: 5 * time.Second,
		supplyScenario: "S1,S3", supplyHorizon: 4320, supplyIntervals: 24,
		supplySeed: 7, timeUnit: 50 * time.Millisecond,
		rebalanceEvery: 20 * time.Millisecond,
	}
	go func() {
		done <- run(ctx, opt, ready)
	}()
	var addr string
	select {
	case addr = <-ready:
	case err := <-done:
		t.Fatalf("server exited early: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("server never became ready")
	}
	base := "http://" + addr

	resp, err := http.Get(base + "/v1/zones")
	if err != nil {
		t.Fatal(err)
	}
	var zr wire.ZonesResponse
	if err := json.NewDecoder(resp.Body).Decode(&zr); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || len(zr.Names) != 2 || zr.Horizon != 4320 || zr.Digest == "" {
		t.Fatalf("zones: %d %+v", resp.StatusCode, zr)
	}

	wf, err := cawosched.GenerateWorkflow(cawosched.Bacass, 30, 1)
	if err != nil {
		t.Fatal(err)
	}
	body, err := json.Marshal(wire.SubmitWorkflowRequest{Workflow: wire.FromDAG(wf), DeadlineFactor: 4})
	if err != nil {
		t.Fatal(err)
	}
	resp, err = http.Post(base+"/v1/workflows", "application/json", strings.NewReader(string(body)))
	if err != nil {
		t.Fatal(err)
	}
	var st wire.WorkflowResponse
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated || st.ID == "" {
		t.Fatalf("submit: %d %+v", resp.StatusCode, st)
	}

	// Let the wall clock and the rolling horizon tick at least once.
	time.Sleep(60 * time.Millisecond)

	resp, err = http.Get(base + "/v1/workflows/" + st.ID)
	if err != nil {
		t.Fatal(err)
	}
	var got wire.WorkflowResponse
	if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || got.ID != st.ID {
		t.Fatalf("status: %d %+v", resp.StatusCode, got)
	}
	if got.Cost > got.AdmittedCost {
		t.Errorf("rolling horizon increased cost: %d > admitted %d", got.Cost, got.AdmittedCost)
	}

	req, err := http.NewRequest(http.MethodDelete, base+"/v1/workflows/"+st.ID, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cancel: %d", resp.StatusCode)
	}

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("graceful shutdown returned %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("server did not shut down")
	}
}

// TestObservabilityEndToEnd boots the full daemon — online scheduling,
// rolling horizon, and the -debug-addr side listener — drives a mix of
// solve, batch, and workflow traffic, and then checks every observability
// surface: a valid Prometheus exposition with carbon and stage families,
// the request's trace (keyed by the client's X-Request-ID) with its stage
// spans, per-stage timings on the wire, and pprof on the side listener.
// freeAddr reserves an ephemeral port and releases it for the daemon to
// bind: run only reports the main listener's address through ready, so the
// test must know the debug address up front.
func freeAddr(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

func TestObservabilityEndToEnd(t *testing.T) {
	debugAddr := freeAddr(t)
	ctx, cancel := context.WithCancel(context.Background())
	ready := make(chan string, 1)
	done := make(chan error, 1)
	opt := options{
		addr: "127.0.0.1:0", debugAddr: debugAddr,
		clusterName: "small", zones: 2, seed: 7,
		reqTimeout: 30 * time.Second, batchWork: 2, searchWork: 2,
		maxBatch: 16, grace: 5 * time.Second,
		supplyScenario: "S1,S3", supplyHorizon: 4320, supplyIntervals: 24,
		supplySeed: 7, timeUnit: 50 * time.Millisecond,
		rebalanceEvery: 20 * time.Millisecond,
		traceBuffer:    64, slowSolve: -1,
	}
	go func() {
		done <- run(ctx, opt, ready)
	}()
	var addr string
	select {
	case addr = <-ready:
	case err := <-done:
		t.Fatalf("server exited early: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("server never became ready")
	}
	base := "http://" + addr

	wf, err := cawosched.GenerateWorkflow(cawosched.Bacass, 30, 1)
	if err != nil {
		t.Fatal(err)
	}

	// One traced solve with a client request ID.
	sbody, err := json.Marshal(wire.SolveRequest{
		Workflow: wire.FromDAG(wf), Variant: "pressWR-LS", DeadlineFactor: 1.5, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPost, base+"/v1/solve", strings.NewReader(string(sbody)))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("X-Request-ID", "obs-e2e-1")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("solve: %d %s", resp.StatusCode, raw)
	}
	if got := resp.Header.Get("X-Request-ID"); got != "obs-e2e-1" {
		t.Errorf("X-Request-ID echoed as %q", got)
	}
	var sr wire.SolveResponse
	if err := json.Unmarshal(raw, &sr); err != nil {
		t.Fatal(err)
	}
	if len(sr.Timings) == 0 {
		t.Error("solve response carries no stage timings")
	}
	stages := map[string]bool{}
	for _, st := range sr.Timings {
		stages[st.Stage] = true
	}
	for _, want := range []string{"plan", "supply", "cache", "schedule"} {
		if !stages[want] {
			t.Errorf("wire timings missing stage %q: %+v", want, sr.Timings)
		}
	}

	// A small batch and a workflow submission to widen the traffic mix.
	bbody, err := json.Marshal(wire.BatchRequest{Requests: []wire.SolveRequest{
		{Workflow: wire.FromDAG(wf), Variant: "slack", Seed: 2},
		{Workflow: wire.FromDAG(wf), Variant: "no-such", Seed: 3},
	}})
	if err != nil {
		t.Fatal(err)
	}
	resp, err = http.Post(base+"/v1/solve/batch", "application/json", strings.NewReader(string(bbody)))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch: %d", resp.StatusCode)
	}
	wbody, err := json.Marshal(wire.SubmitWorkflowRequest{Workflow: wire.FromDAG(wf), DeadlineFactor: 4})
	if err != nil {
		t.Fatal(err)
	}
	resp, err = http.Post(base+"/v1/workflows", "application/json", strings.NewReader(string(wbody)))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("submit: %d", resp.StatusCode)
	}
	// Let the rolling horizon tick so rebalance metrics move.
	time.Sleep(60 * time.Millisecond)

	// The exposition parses and carries the new families.
	resp, err = http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	mraw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/plain; version=0.0.4; charset=utf-8" {
		t.Errorf("metrics Content-Type %q", ct)
	}
	if err := obs.ValidateExposition(string(mraw)); err != nil {
		t.Fatalf("invalid exposition: %v", err)
	}
	for _, want := range []string{
		`schedd_solve_latency_seconds_count{outcome="ok"}`,
		`schedd_solve_latency_seconds_count{outcome="error"}`,
		`schedd_stage_latency_seconds_count{stage="schedule"}`,
		"schedd_carbon_green_units_total{zone=",
		"schedd_carbon_brown_units_total{zone=",
		"schedd_workflows_submitted_total 1",
		"schedd_rebalance_passes_total",
		`schedd_tenant_cost_units{view="admitted"}`,
		"schedd_build_info{go_version=",
	} {
		if !strings.Contains(string(mraw), want) {
			t.Errorf("exposition missing %q", want)
		}
	}

	// The traced solve is in /debug/traces under its request ID, with the
	// stage spans nested below the solve span.
	resp, err = http.Get(base + "/debug/traces?n=100")
	if err != nil {
		t.Fatal(err)
	}
	var traces obs.TracesResponse
	if err := json.NewDecoder(resp.Body).Decode(&traces); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	var solveTrace *obs.Trace
	for _, tr := range traces.Traces {
		if tr.ID == "obs-e2e-1" {
			solveTrace = tr
		}
	}
	if solveTrace == nil {
		t.Fatalf("no trace for request obs-e2e-1 among %d traces", len(traces.Traces))
	}
	var solveSpan *obs.SpanData
	for _, c := range solveTrace.Root.Children {
		if c.Name == "solve" {
			solveSpan = c
		}
	}
	if solveSpan == nil {
		t.Fatal("traced request has no solve span")
	}
	names := map[string]bool{}
	for _, c := range solveSpan.Children {
		names[c.Name] = true
	}
	for _, want := range []string{"plan", "supply", "solve-cache", "schedule"} {
		if !names[want] {
			t.Errorf("solve span missing %q child (have %v)", want, names)
		}
	}

	// The side listener serves pprof and the same metrics view.
	dresp, err := http.Get("http://" + debugAddr + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatalf("debug listener: %v", err)
	}
	io.Copy(io.Discard, dresp.Body)
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusOK {
		t.Errorf("pprof cmdline: %d", dresp.StatusCode)
	}
	dresp, err = http.Get("http://" + debugAddr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	dmraw, _ := io.ReadAll(dresp.Body)
	dresp.Body.Close()
	if err := obs.ValidateExposition(string(dmraw)); err != nil {
		t.Errorf("debug-listener exposition invalid: %v", err)
	}

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("graceful shutdown returned %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("server did not shut down")
	}
}
