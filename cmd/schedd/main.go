// Command schedd serves the carbon-aware scheduler over HTTP/JSON: clients
// POST workflows (plus a deadline and a power profile or scenario) to
// /v1/solve and /v1/solve/batch and get back schedules, carbon costs, and
// per-interval breakdowns. One solver — with its HEFT plan cache and
// solve-response cache — fronts one target cluster for the whole process.
//
// Usage:
//
//	schedd [flags]
//
// The target platform is one of the paper clusters (-cluster small|large)
// or a custom one loaded from a JSON file in the wire format
// (-cluster-file). Shutdown is graceful: on SIGINT/SIGTERM the server
// stops accepting connections, /healthz flips to 503 ("draining"), and
// in-flight requests get -shutdown-grace to finish.
//
// See the README's "Running the service" section for curl examples.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	cawosched "repro"
	"repro/internal/server"
	"repro/internal/wire"
)

func main() {
	var (
		addr        = flag.String("addr", ":8080", "listen address")
		clusterName = flag.String("cluster", "small", "target cluster: small (72 nodes) | large (144 nodes)")
		clusterFile = flag.String("cluster-file", "", "load the target cluster from this JSON file (wire format, may carry per-group zones) instead of -cluster")
		zones       = flag.Int("zones", 1, "split the -cluster platform round-robin into this many grid zones (ignored with -cluster-file)")
		mapping     = flag.String("mapping", "", `default mapping for requests that set none: a policy name (heft | lowpower | energy | zonegreen | zoneenergy) or "map-search" (empty = heft)`)
		seed        = flag.Uint64("seed", 42, "cluster link seed (ignored with -cluster-file)")
		reqTimeout  = flag.Duration("request-timeout", 60*time.Second, "per-request solving deadline (0 = none)")
		batchWork   = flag.Int("batch-workers", 0, "bounded worker pool for batched solves (0 = min(GOMAXPROCS, 16))")
		searchWork  = flag.Int("search-workers", 0, "per-solve worker pool for the local search and the map-search fan-out (<= 1 = sequential; responses are identical at any count)")
		maxBatch    = flag.Int("max-batch", 256, "maximum requests per batch body")
		grace       = flag.Duration("shutdown-grace", 30*time.Second, "how long in-flight requests may finish after SIGINT/SIGTERM")
		drainDelay  = flag.Duration("drain-delay", 0, "how long /healthz serves 503 (draining) before the listener closes, so load balancers can deregister")
	)
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, *addr, *clusterName, *clusterFile, *zones, *mapping, *seed, *reqTimeout, *batchWork, *searchWork, *maxBatch, *grace, *drainDelay, nil); err != nil {
		fmt.Fprintln(os.Stderr, "schedd:", err)
		os.Exit(1)
	}
}

// buildCluster resolves the target platform from the flags.
func buildCluster(clusterName, clusterFile string, zones int, seed uint64) (*cawosched.Cluster, string, error) {
	if clusterFile != "" {
		data, err := os.ReadFile(clusterFile)
		if err != nil {
			return nil, "", err
		}
		var wc wire.Cluster
		if err := json.Unmarshal(data, &wc); err != nil {
			return nil, "", fmt.Errorf("parsing %s: %w", clusterFile, err)
		}
		c, err := wc.ToCluster()
		if err != nil {
			return nil, "", fmt.Errorf("parsing %s: %w", clusterFile, err)
		}
		return c, clusterFile, nil
	}
	if zones < 1 {
		zones = 1
	}
	switch clusterName {
	case "small":
		return cawosched.SmallZonedCluster(seed, zones), "small", nil
	case "large":
		return cawosched.LargeZonedCluster(seed, zones), "large", nil
	default:
		return nil, "", fmt.Errorf("unknown cluster %q (want small, large, or -cluster-file)", clusterName)
	}
}

// run serves until ctx is canceled, then drains gracefully. If ready is
// non-nil it receives the bound address once the listener is up (tests
// pass ":0" and read the actual port from it).
func run(ctx context.Context, addr, clusterName, clusterFile string, zones int, mapping string, seed uint64, reqTimeout time.Duration, batchWork, searchWork, maxBatch int, grace, drainDelay time.Duration, ready chan<- string) error {
	cluster, label, err := buildCluster(clusterName, clusterFile, zones, seed)
	if err != nil {
		return err
	}
	// Fail fast on an unknown default mapping instead of 400ing every
	// request later.
	if _, _, err := cawosched.ParseMapping(mapping); err != nil {
		return err
	}
	if reqTimeout == 0 {
		// The flag documents 0 as "no deadline"; the server Config uses 0
		// for "default", so translate.
		reqTimeout = -1
	}
	srv := server.New(cawosched.NewSolver(cluster), server.Config{
		RequestTimeout: reqTimeout,
		BatchWorkers:   batchWork,
		MaxBatch:       maxBatch,
		DefaultMapping: mapping,
		SearchWorkers:  searchWork,
	})

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	httpSrv := &http.Server{
		Handler:           srv,
		ReadHeaderTimeout: 10 * time.Second,
	}
	log.Printf("schedd: serving cluster %s (%d compute processors, %d zones) on %s", label, cluster.NumCompute(), cluster.NumZones(), ln.Addr())
	if ready != nil {
		ready <- ln.Addr().String()
	}

	errc := make(chan error, 1)
	go func() { errc <- httpSrv.Serve(ln) }()

	select {
	case err := <-errc:
		return err // listener failed before any shutdown request
	case <-ctx.Done():
	}

	// Graceful shutdown: flip /healthz to 503 (draining) and — with a
	// positive -drain-delay — keep the listener open for that window so
	// load balancer health probes actually observe the 503 and deregister
	// before connections start being refused. Then http.Server.Shutdown
	// waits for in-flight requests up to the grace period.
	log.Printf("schedd: draining (delay %s, grace %s)", drainDelay, grace)
	srv.SetDraining()
	if drainDelay > 0 {
		time.Sleep(drainDelay)
	}
	sctx, cancel := context.WithTimeout(context.Background(), grace)
	defer cancel()
	if err := httpSrv.Shutdown(sctx); err != nil {
		log.Printf("schedd: forced shutdown: %v", err)
		httpSrv.Close()
		return err
	}
	if err := <-errc; !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	log.Printf("schedd: stopped")
	return nil
}
