// Command schedd serves the carbon-aware scheduler over HTTP/JSON: clients
// POST workflows (plus a deadline and a power profile or scenario) to
// /v1/solve and /v1/solve/batch and get back schedules, carbon costs, and
// per-interval breakdowns. One solver — with its HEFT plan cache and
// solve-response cache — fronts one target cluster for the whole process.
//
// With -supply-scenario the daemon additionally runs the multi-tenant
// online scheduler: a periodic per-zone green supply forecast is generated
// at startup, POST /v1/workflows admits workflows against the residual of
// that forecast (cluster-state ledger, admission control), and an optional
// rolling-horizon loop (-rebalance-every) periodically re-solves
// admitted-but-unstarted workflows, committing only strictly cheaper
// placements.
//
// Usage:
//
//	schedd [flags]
//
// The target platform is one of the paper clusters (-cluster small|large)
// or a custom one loaded from a JSON file in the wire format
// (-cluster-file). Shutdown is graceful: on SIGINT/SIGTERM the server
// stops accepting connections, /healthz flips to 503 ("draining"), and
// in-flight requests get -shutdown-grace to finish.
//
// See the README's "Running the service" and "Online scheduling" sections
// for curl examples.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	cawosched "repro"
	"repro/internal/obs"
	"repro/internal/power"
	"repro/internal/server"
	"repro/internal/tenancy"
	"repro/internal/wire"
)

// options collects every flag-settable knob of the daemon.
type options struct {
	addr        string
	clusterName string
	clusterFile string
	zones       int
	mapping     string
	seed        uint64
	reqTimeout  time.Duration
	batchWork   int
	searchWork  int
	maxBatch    int
	maxQueue    int
	grace       time.Duration
	drainDelay  time.Duration

	// Caching/concurrency layer of the solver.
	solveCacheLimit int
	planCacheLimit  int
	cacheShards     int
	cacheTier       string
	coalesce        bool

	// Observability.
	debugAddr   string
	traceBuffer int
	slowSolve   time.Duration
	logJSON     bool

	// Online scheduling (the tenancy layer). Empty supplyScenario leaves
	// it disabled: /v1/workflows answers 501.
	supplyScenario  string
	supplyHorizon   int64
	supplyIntervals int
	supplySeed      uint64
	timeUnit        time.Duration
	rebalanceEvery  time.Duration
}

func main() {
	var opt options
	flag.StringVar(&opt.addr, "addr", ":8080", "listen address")
	flag.StringVar(&opt.clusterName, "cluster", "small", "target cluster: small (72 nodes) | large (144 nodes)")
	flag.StringVar(&opt.clusterFile, "cluster-file", "", "load the target cluster from this JSON file (wire format, may carry per-group zones) instead of -cluster")
	flag.IntVar(&opt.zones, "zones", 1, "split the -cluster platform round-robin into this many grid zones (ignored with -cluster-file)")
	flag.StringVar(&opt.mapping, "mapping", "", `default mapping for requests that set none: a policy name (heft | lowpower | energy | zonegreen | zoneenergy) or "map-search" (empty = heft)`)
	flag.Uint64Var(&opt.seed, "seed", 42, "cluster link seed (ignored with -cluster-file)")
	flag.DurationVar(&opt.reqTimeout, "request-timeout", 60*time.Second, "per-request solving deadline (0 = none)")
	flag.IntVar(&opt.batchWork, "batch-workers", 0, "bounded worker pool for batched solves (0 = min(GOMAXPROCS, 16))")
	flag.IntVar(&opt.searchWork, "search-workers", 0, "per-solve worker pool for the local search and the map-search fan-out (<= 1 = sequential; responses are identical at any count)")
	flag.IntVar(&opt.maxBatch, "max-batch", 256, "maximum requests per batch body")
	flag.IntVar(&opt.maxQueue, "max-queue", 0, "maximum batch items in flight across all batch requests before 429 (0 = 4096)")
	flag.IntVar(&opt.solveCacheLimit, "solve-cache-limit", 4096, "maximum cached solve responses across shards (0 = response caching off)")
	flag.IntVar(&opt.planCacheLimit, "plan-cache-limit", 4096, "maximum memoized plans across shards (0 = plan memoization off)")
	flag.IntVar(&opt.cacheShards, "cache-shards", 0, "power-of-two shard count of the solver caches (0 = next power of two >= GOMAXPROCS; responses are identical at any count)")
	flag.StringVar(&opt.cacheTier, "cache-tier", "", `external cache tier between the response cache and a full solve: "none" | "memory" | "memory:<entries>" | "peers:<host,...>[:mem=<entries>]" — list every fleet member, this instance included, identically on every peer (empty = none)`)
	flag.BoolVar(&opt.coalesce, "coalesce", true, "coalesce concurrent identical solves onto one in-flight leader (singleflight)")
	flag.DurationVar(&opt.grace, "shutdown-grace", 30*time.Second, "how long in-flight requests may finish after SIGINT/SIGTERM")
	flag.DurationVar(&opt.drainDelay, "drain-delay", 0, "how long /healthz serves 503 (draining) before the listener closes, so load balancers can deregister")
	flag.StringVar(&opt.debugAddr, "debug-addr", "", "serve net/http/pprof, /metrics, and /debug/traces on this side address (empty = disabled; the main listener serves /metrics and /debug/traces regardless)")
	flag.IntVar(&opt.traceBuffer, "trace-buffer", 0, "solve traces retained for GET /debug/traces (0 = 256)")
	flag.DurationVar(&opt.slowSolve, "slow-solve", time.Second, "log requests at least this slow at warning level (negative = never)")
	flag.BoolVar(&opt.logJSON, "log-json", false, "emit structured logs as JSON instead of text")
	flag.StringVar(&opt.supplyScenario, "supply-scenario", "", `enable online scheduling (/v1/workflows) with this green supply shape: one scenario ("S1".."S4") for every zone, or a comma list with one per zone`)
	flag.Int64Var(&opt.supplyHorizon, "supply-horizon", 4320, "period of the generated supply forecast, in model time units (it repeats beyond this)")
	flag.IntVar(&opt.supplyIntervals, "supply-intervals", 24, "intervals per generated supply profile")
	flag.Uint64Var(&opt.supplySeed, "supply-seed", 42, "supply forecast generation seed")
	flag.DurationVar(&opt.timeUnit, "time-unit", 100*time.Millisecond, "wall-clock duration of one model time unit for the online scheduler")
	flag.DurationVar(&opt.rebalanceEvery, "rebalance-every", 0, "period of the rolling-horizon re-solve loop (0 = disabled)")
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, opt, nil); err != nil {
		fmt.Fprintln(os.Stderr, "schedd:", err)
		os.Exit(1)
	}
}

// buildCluster resolves the target platform from the flags.
func buildCluster(clusterName, clusterFile string, zones int, seed uint64) (*cawosched.Cluster, string, error) {
	if clusterFile != "" {
		data, err := os.ReadFile(clusterFile)
		if err != nil {
			return nil, "", err
		}
		var wc wire.Cluster
		if err := json.Unmarshal(data, &wc); err != nil {
			return nil, "", fmt.Errorf("parsing %s: %w", clusterFile, err)
		}
		c, err := wc.ToCluster()
		if err != nil {
			return nil, "", fmt.Errorf("parsing %s: %w", clusterFile, err)
		}
		return c, clusterFile, nil
	}
	if zones < 1 {
		zones = 1
	}
	switch clusterName {
	case "small":
		return cawosched.SmallZonedCluster(seed, zones), "small", nil
	case "large":
		return cawosched.LargeZonedCluster(seed, zones), "large", nil
	default:
		return nil, "", fmt.Errorf("unknown cluster %q (want small, large, or -cluster-file)", clusterName)
	}
}

// buildSupply generates the periodic per-zone supply forecast from the
// scenario spelling: one scenario applied to every zone, or a comma list
// with exactly one per cluster zone. Per-zone power bounds come from the
// cluster (the paper's platform-derived gmin/gmax).
func buildSupply(cluster *cawosched.Cluster, scenario string, horizon int64, intervals int, seed uint64) (*power.ZoneSet, error) {
	names := strings.Split(scenario, ",")
	if len(names) == 1 && cluster.NumZones() > 1 {
		names = make([]string, cluster.NumZones())
		for z := range names {
			names[z] = scenario
		}
	}
	if len(names) != cluster.NumZones() {
		return nil, fmt.Errorf("-supply-scenario lists %d scenarios for %d zones", len(names), cluster.NumZones())
	}
	if horizon <= 0 {
		return nil, fmt.Errorf("-supply-horizon %d must be positive", horizon)
	}
	specs := make([]power.ZoneSpec, len(names))
	for z, name := range names {
		sc, err := power.ParseScenario(strings.TrimSpace(name))
		if err != nil {
			return nil, err
		}
		gmin, gmax := power.PlatformBounds(cluster.ZoneComputeIdle(z), cluster.ZoneComputeWork(z))
		specs[z] = power.ZoneSpec{
			Name:     fmt.Sprintf("z%d", z),
			Scenario: sc,
			Gmin:     gmin,
			Gmax:     gmax,
		}
	}
	return power.GenerateZones(specs, horizon, intervals, seed)
}

// rebalanceLoop runs the rolling horizon until ctx is canceled: every
// period it re-solves admitted-but-unstarted workflows against the
// current residual supply, committing only strictly cheaper placements.
func rebalanceLoop(ctx context.Context, lg *slog.Logger, m *tenancy.Manager, every time.Duration) {
	ticker := time.NewTicker(every)
	defer ticker.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-ticker.C:
			rep, err := m.Rebalance(ctx)
			if err != nil {
				if ctx.Err() == nil {
					lg.Error("rebalance failed", "err", err)
				}
				continue
			}
			if rep.Moved > 0 {
				lg.Info("rebalance pass",
					"time", rep.Time, "moved", rep.Moved,
					"considered", rep.Considered, "saved_units", rep.Saved)
			}
		}
	}
}

// debugMux builds the side mux served on -debug-addr: the standard pprof
// endpoints plus the same /metrics and /debug/traces views as the main
// listener, so profilers and scrapers can stay off the serving port.
func debugMux(srv *server.Server) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		srv.Registry().WriteText(w)
	})
	mux.Handle("/debug/traces", srv.Tracer())
	return mux
}

// run serves until ctx is canceled, then drains gracefully. If ready is
// non-nil it receives the bound address once the listener is up (tests
// pass ":0" and read the actual port from it).
func run(ctx context.Context, opt options, ready chan<- string) error {
	var handler slog.Handler = slog.NewTextHandler(os.Stderr, nil)
	if opt.logJSON {
		handler = slog.NewJSONHandler(os.Stderr, nil)
	}
	lg := slog.New(handler)

	cluster, label, err := buildCluster(opt.clusterName, opt.clusterFile, opt.zones, opt.seed)
	if err != nil {
		return err
	}
	// Fail fast on an unknown default mapping instead of 400ing every
	// request later.
	if _, _, err := cawosched.ParseMapping(opt.mapping); err != nil {
		return err
	}
	reqTimeout := opt.reqTimeout
	if reqTimeout == 0 {
		// The flag documents 0 as "no deadline"; the server Config uses 0
		// for "default", so translate.
		reqTimeout = -1
	}
	// Validate the cache knobs up front: a typo'd tier spec or a negative
	// limit should refuse to start, not misbehave under load.
	if opt.solveCacheLimit < 0 {
		return fmt.Errorf("-solve-cache-limit %d must be >= 0", opt.solveCacheLimit)
	}
	if opt.planCacheLimit < 0 {
		return fmt.Errorf("-plan-cache-limit %d must be >= 0", opt.planCacheLimit)
	}
	if opt.cacheShards < 0 {
		return fmt.Errorf("-cache-shards %d must be >= 0", opt.cacheShards)
	}
	tier, err := cawosched.ParseCacheTier(opt.cacheTier)
	if err != nil {
		return err
	}
	// A peers: tier additionally gets the fleet cache-exchange endpoints
	// and per-peer /metrics families wired through server.Config.
	peerTier, _ := tier.(*cawosched.PeerTier)
	solver := cawosched.NewSolver(cluster,
		cawosched.WithSolveCacheLimit(opt.solveCacheLimit),
		cawosched.WithPlanCacheLimit(opt.planCacheLimit),
		cawosched.WithCacheShards(opt.cacheShards),
		cawosched.WithCoalescing(opt.coalesce),
		cawosched.WithCacheTier(tier),
	)

	var manager *tenancy.Manager
	if opt.supplyScenario != "" {
		supply, err := buildSupply(cluster, opt.supplyScenario, opt.supplyHorizon, opt.supplyIntervals, opt.supplySeed)
		if err != nil {
			return err
		}
		manager, err = tenancy.NewManager(tenancy.Config{
			Solver:        solver,
			Supply:        supply,
			Clock:         tenancy.NewWallClock(opt.timeUnit),
			SearchWorkers: opt.searchWork,
		})
		if err != nil {
			return err
		}
		lg.Info("online scheduling on",
			"zones", supply.NumZones(), "horizon_units", supply.T(), "time_unit", opt.timeUnit.String())
	}

	srv := server.New(solver, server.Config{
		RequestTimeout: reqTimeout,
		BatchWorkers:   opt.batchWork,
		MaxBatch:       opt.maxBatch,
		MaxQueue:       opt.maxQueue,
		DefaultMapping: opt.mapping,
		SearchWorkers:  opt.searchWork,
		Manager:        manager,
		Logger:         lg,
		SlowSolve:      opt.slowSolve,
		TraceBuffer:    opt.traceBuffer,
		PeerTier:       peerTier,
	})

	ln, err := net.Listen("tcp", opt.addr)
	if err != nil {
		return err
	}
	httpSrv := &http.Server{
		Handler:           srv,
		ReadHeaderTimeout: 10 * time.Second,
	}
	lg.Info("serving", "cluster", label,
		"compute_processors", cluster.NumCompute(), "zones", cluster.NumZones(),
		"cache_shards", solver.Stats().CacheShards, "coalesce", opt.coalesce,
		"addr", ln.Addr().String())
	if ready != nil {
		ready <- ln.Addr().String()
	}

	// Opt-in side listener for pprof and scraping off the serving port.
	var debugSrv *http.Server
	if opt.debugAddr != "" {
		dln, err := net.Listen("tcp", opt.debugAddr)
		if err != nil {
			return fmt.Errorf("debug listener: %w", err)
		}
		debugSrv = &http.Server{Handler: debugMux(srv), ReadHeaderTimeout: 10 * time.Second}
		lg.Info("debug endpoints up", "addr", dln.Addr().String())
		go func() {
			if err := debugSrv.Serve(dln); err != nil && !errors.Is(err, http.ErrServerClosed) {
				lg.Error("debug server failed", "err", err)
			}
		}()
	}

	// The rolling horizon runs outside any request, so it carries the
	// server's registry and tracer explicitly: rebalance passes show up in
	// /debug/traces and the stage histograms like request-driven work.
	loopCtx, stopLoop := context.WithCancel(
		obs.WithTracer(obs.WithMeter(context.Background(), srv.Registry()), srv.Tracer()))
	defer stopLoop()
	loopDone := make(chan struct{})
	if manager != nil && opt.rebalanceEvery > 0 {
		go func() {
			defer close(loopDone)
			rebalanceLoop(loopCtx, lg, manager, opt.rebalanceEvery)
		}()
	} else {
		close(loopDone)
	}

	errc := make(chan error, 1)
	go func() { errc <- httpSrv.Serve(ln) }()

	select {
	case err := <-errc:
		return err // listener failed before any shutdown request
	case <-ctx.Done():
	}

	// Graceful shutdown: flip /healthz to 503 (draining) and — with a
	// positive -drain-delay — keep the listener open for that window so
	// load balancer health probes actually observe the 503 and deregister
	// before connections start being refused. Then http.Server.Shutdown
	// waits for in-flight requests up to the grace period. The rolling
	// horizon stops first so no rebalance pass races the drain.
	lg.Info("draining", "delay", opt.drainDelay.String(), "grace", opt.grace.String())
	srv.SetDraining()
	stopLoop()
	<-loopDone
	if opt.drainDelay > 0 {
		time.Sleep(opt.drainDelay)
	}
	sctx, cancel := context.WithTimeout(context.Background(), opt.grace)
	defer cancel()
	if debugSrv != nil {
		debugSrv.Shutdown(sctx)
	}
	if err := httpSrv.Shutdown(sctx); err != nil {
		lg.Error("forced shutdown", "err", err)
		httpSrv.Close()
		return err
	}
	if err := <-errc; !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	lg.Info("stopped")
	return nil
}
