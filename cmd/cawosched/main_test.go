package main

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestParseFamily(t *testing.T) {
	for _, name := range []string{"atacseq", "bacass", "eager", "methylseq"} {
		if f, err := parseFamily(name); err != nil || f.String() != name {
			t.Errorf("parseFamily(%q) = %v, %v", name, f, err)
		}
	}
	if _, err := parseFamily("montage"); err == nil {
		t.Error("unknown family accepted")
	}
}

func TestParseScenario(t *testing.T) {
	for _, name := range []string{"S1", "s2", "S3", "s4"} {
		if _, err := parseScenario(name); err != nil {
			t.Errorf("parseScenario(%q): %v", name, err)
		}
	}
	if _, err := parseScenario("S5"); err == nil {
		t.Error("unknown scenario accepted")
	}
}

func TestSelectVariants(t *testing.T) {
	all, err := selectVariants("all")
	if err != nil || len(all) != 16 {
		t.Errorf("all → %d variants, err %v", len(all), err)
	}
	one, err := selectVariants("pressWR-LS")
	if err != nil || len(one) != 1 || one[0] != "pressWR-LS" {
		t.Errorf("pressWR-LS → %v, %v", one, err)
	}
	none, err := selectVariants("asap")
	if err != nil || len(none) != 0 {
		t.Errorf("asap → %v, %v", none, err)
	}
	if _, err := selectVariants("bogus"); err == nil {
		t.Error("unknown variant accepted")
	} else if !strings.Contains(err.Error(), "pressWR-LS") {
		t.Errorf("error should list valid names: %v", err)
	}
}

func TestRunEndToEnd(t *testing.T) {
	dir := t.TempDir()
	jsonPath := filepath.Join(dir, "s.json")
	csvPath := filepath.Join(dir, "s.csv")
	err := run(context.Background(), "bacass", 30, "", "small", 1, "S1", "", "", 2, "heft", "pressWR-LS", 7, 2, false, false, jsonPath, csvPath)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{jsonPath, csvPath} {
		st, err := os.Stat(p)
		if err != nil {
			t.Errorf("%s not written: %v", p, err)
		} else if st.Size() == 0 {
			t.Errorf("%s empty", p)
		}
	}
}

func TestRunMultiZoneEndToEnd(t *testing.T) {
	// Generated per-zone scenarios on a 2-zone split.
	if err := run(context.Background(), "bacass", 30, "", "small", 2, "S1", "S1,S2", "", 2, "heft", "pressWR-LS", 7, 2, false, false, "", ""); err != nil {
		t.Fatal(err)
	}
	// Per-zone intensity traces, one CSV per zone.
	dir := t.TempDir()
	a := filepath.Join(dir, "a.csv")
	b := filepath.Join(dir, "b.csv")
	if err := os.WriteFile(a, []byte("offset,intensity\n0,400\n30,100\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(b, []byte("offset,intensity\n0,50\n40,300\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(context.Background(), "bacass", 30, "", "small", 2, "S1", "", a+","+b, 2, "heft", "slack", 7, 2, false, false, "", ""); err != nil {
		t.Fatal(err)
	}
	// One trace for two zones is a configuration error.
	if err := run(context.Background(), "bacass", 30, "", "small", 2, "S1", "", a, 2, "heft", "slack", 7, 2, false, false, "", ""); err == nil {
		t.Error("one intensity trace accepted for two zones")
	}
	// Mismatched zone scenario count too.
	if err := run(context.Background(), "bacass", 30, "", "small", 2, "S1", "S1,S2,S3", "", 2, "heft", "slack", 7, 2, false, false, "", ""); err == nil {
		t.Error("three zone scenarios accepted for two zones")
	}
}

func TestRunRejectsBadInputs(t *testing.T) {
	if err := run(context.Background(), "bogus", 30, "", "small", 1, "S1", "", "", 2, "heft", "all", 1, 0, false, false, "", ""); err == nil {
		t.Error("bad family accepted")
	}
	if err := run(context.Background(), "bacass", 30, "", "medium", 1, "S1", "", "", 2, "heft", "all", 1, 0, false, false, "", ""); err == nil {
		t.Error("bad cluster accepted")
	}
	if err := run(context.Background(), "bacass", 30, "", "small", 1, "S9", "", "", 2, "heft", "all", 1, 0, false, false, "", ""); err == nil {
		t.Error("bad scenario accepted")
	}
	if err := run(context.Background(), "bacass", 30, "", "small", 1, "S1", "", "", 0.5, "heft", "all", 1, 0, false, false, "", ""); err == nil {
		t.Error("deadline factor < 1 accepted")
	}
	if err := run(context.Background(), "bacass", 30, "/nonexistent/path.dot", "small", 1, "S1", "", "", 2, "heft", "all", 1, 0, false, false, "", ""); err == nil {
		t.Error("missing dot file accepted")
	}
}

func TestRunFromDOTFile(t *testing.T) {
	dir := t.TempDir()
	dot := filepath.Join(dir, "wf.dot")
	src := "n0 -> n1\nn0 -> n2\nn1 -> n3\nn2 -> n3\n"
	if err := os.WriteFile(dot, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(context.Background(), "", 0, dot, "small", 1, "S4", "", "", 1.5, "heft", "slack", 3, 0, false, false, "", ""); err != nil {
		t.Fatal(err)
	}
}
