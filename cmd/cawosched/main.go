// Command cawosched schedules a single workflow instance with the
// CaWoSched heuristics and reports the carbon cost of every variant
// against the ASAP baseline.
//
// Usage:
//
//	cawosched [flags]
//
// The workflow is either synthesized (-family, -n) or loaded from a
// GraphViz .dot file (-dot). The mapping and ordering always come from the
// built-in HEFT implementation, as in the paper; the HEFT plan is computed
// once per workflow and shared by all requested variants through the
// Solver's plan cache. Variant names come from the registry (see
// -list-variants); Ctrl-C cancels the in-flight solve.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	cawosched "repro"
	"repro/internal/power"
	"repro/internal/wfgen"
)

func main() {
	var (
		family   = flag.String("family", "methylseq", "workflow family: atacseq | bacass | eager | methylseq")
		n        = flag.Int("n", 200, "number of workflow tasks (ignored with -dot)")
		dotFile  = flag.String("dot", "", "load the workflow from this GraphViz .dot file")
		cluster  = flag.String("cluster", "small", "target cluster: small (72 nodes) | large (144 nodes)")
		zones    = flag.Int("zones", 1, "split the cluster round-robin into this many grid zones (each with its own power profile)")
		scenario = flag.String("scenario", "S1", "power scenario: S1 | S2 | S3 | S4")
		zoneScen = flag.String("zone-scenarios", "", "comma-separated per-zone scenarios, e.g. S1,S2 (overrides -scenario; one entry per zone)")
		intens   = flag.String("intensity", "", "comma-separated per-zone carbon-intensity CSV files (offset,intensity; one file = cluster-wide, else one per zone)")
		factor   = flag.Float64("deadline-factor", 2, "deadline = factor x ASAP makespan (>= 1)")
		mapping  = flag.String("mapping", "heft", `first-pass mapping: heft | lowpower | energy | zonegreen | zoneenergy | map-search (two-pass search keeping the lowest-carbon feasible plan)`)
		variant  = flag.String("variant", "all", `heuristic to run: "all", "asap", or a registry name like pressWR-LS (see -list-variants)`)
		seed     = flag.Uint64("seed", 42, "random seed for workflow/profile generation")
		workers  = flag.Int("search-workers", 0, "worker pool for the local search and the map-search fan-out (<= 1 = sequential; the result is identical at any count)")
		verbose  = flag.Bool("v", false, "print the schedule's start times")
		gantt    = flag.Bool("gantt", false, "render an ASCII Gantt chart of the last variant's schedule")
		jsonOut  = flag.String("json", "", "write the last variant's schedule to this JSON file")
		csvOut   = flag.String("csv", "", "write the last variant's schedule to this CSV file")
		listVar  = flag.Bool("list-variants", false, "print the variant registry (canonical name per line) and exit")
	)
	flag.Parse()
	if *listVar {
		for _, name := range cawosched.VariantNames() {
			fmt.Println(name)
		}
		return
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, *family, *n, *dotFile, *cluster, *zones, *scenario, *zoneScen, *intens, *factor, *mapping, *variant, *seed, *workers, *verbose, *gantt, *jsonOut, *csvOut); err != nil {
		if errors.Is(err, cawosched.ErrCanceled) {
			fmt.Fprintln(os.Stderr, "cawosched: interrupted")
			os.Exit(130)
		}
		// Classified scheduler failures carry their stable machine-readable
		// code (the same codes the schedd HTTP API returns).
		if code := cawosched.ErrorCode(err); code != "" {
			fmt.Fprintf(os.Stderr, "cawosched: [%s] %v\n", code, err)
		} else {
			fmt.Fprintln(os.Stderr, "cawosched:", err)
		}
		os.Exit(1)
	}
}

func run(ctx context.Context, family string, n int, dotFile, clusterName string, zones int, scenarioName, zoneScen, intens string, factor float64, mapping, variant string, seed uint64, searchWorkers int, verbose, gantt bool, jsonOut, csvOut string) error {
	wf, err := loadWorkflow(family, n, dotFile, seed)
	if err != nil {
		return err
	}
	if zones < 1 {
		zones = 1
	}
	var cluster *cawosched.Cluster
	switch clusterName {
	case "small":
		cluster = cawosched.SmallZonedCluster(seed, zones)
	case "large":
		cluster = cawosched.LargeZonedCluster(seed, zones)
	default:
		return fmt.Errorf("unknown cluster %q", clusterName)
	}
	sc, err := parseScenario(scenarioName)
	if err != nil {
		return err
	}
	if factor < 1 {
		return fmt.Errorf("deadline factor %v < 1: %w", factor, cawosched.ErrInfeasibleDeadline)
	}

	names, err := selectVariants(variant)
	if err != nil {
		return err
	}
	mapPol, mapSearch, err := cawosched.ParseMapping(mapping)
	if err != nil {
		return err
	}

	solver := cawosched.NewSolver(cluster)
	req := cawosched.Request{
		Workflow:       wf,
		Scenario:       sc,
		DeadlineFactor: factor,
		MappingPolicy:  mapPol,
		MapSearch:      mapSearch,
		Seed:           seed,
		SearchWorkers:  searchWorkers,
	}
	if zoneScen != "" && intens != "" {
		return fmt.Errorf("-zone-scenarios and -intensity are mutually exclusive (the intensity traces define the per-zone supply)")
	}
	if zoneScen != "" {
		for _, name := range strings.Split(zoneScen, ",") {
			zsc, err := parseScenario(strings.TrimSpace(name))
			if err != nil {
				return err
			}
			req.ZoneScenarios = append(req.ZoneScenarios, zsc)
		}
	}

	// Plan once (the solver caches it for every variant below) and derive
	// the shared per-zone supply so all variants compete on the same
	// horizon.
	inst, _, err := solver.Plan(ctx, wf)
	if err != nil {
		return err
	}
	D := cawosched.ASAPMakespan(inst)
	var zoneSet *cawosched.ZoneSet
	if intens != "" {
		zoneSet, err = loadIntensityZones(inst, intens, int64(float64(D)*factor+0.5))
	} else {
		zoneSet, err = solver.ZonesFor(ctx, inst, req)
	}
	if err != nil {
		return err
	}
	req.Zones = zoneSet

	fmt.Printf("workflow: %d tasks, %d nodes incl. communications\n", wf.N(), inst.N())
	fmt.Printf("cluster:  %s (%d compute processors, %d zones)\n", clusterName, cluster.NumCompute(), cluster.NumZones())
	if mapSearch || mapPol != cawosched.MapEFT {
		fmt.Printf("mapping:  %s\n", mapping)
	}
	fmt.Printf("horizon:  D = %d, deadline T = %d\n", D, zoneSet.T())
	for _, z := range zoneSet.Zones {
		fmt.Printf("zone %-8s %d intervals, total green %d\n", z.Name+":", z.Profile.J(), z.Profile.TotalGreen())
	}
	fmt.Println()

	asap := cawosched.ASAP(inst)
	asapCost := cawosched.CarbonCostZones(inst, asap, zoneSet)
	fmt.Printf("%-12s  %12s  %8s  %10s\n", "variant", "carbon cost", "vs ASAP", "time")
	fmt.Printf("%-12s  %12d  %8s  %10s\n", "ASAP", asapCost, "1.000", "-")

	var last *cawosched.Schedule
	for _, name := range names {
		req.Variant = name
		start := time.Now()
		res, err := solver.Solve(ctx, req)
		if err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		elapsed := time.Since(start)
		ratio := "0.000"
		if res.ASAPCost > 0 {
			ratio = fmt.Sprintf("%.3f", float64(res.Cost)/float64(res.ASAPCost))
		} else if res.Cost == 0 {
			ratio = "1.000"
		}
		row := fmt.Sprintf("%-12s  %12d  %8s  %10s", res.Variant, res.Cost, ratio, elapsed.Round(time.Millisecond))
		if mapSearch {
			row += "  mapping " + res.Mapping // the search's winning policy
		}
		fmt.Println(row)
		if verbose {
			printSchedule(inst, res.Schedule)
		}
		last = res.Schedule
	}
	if last == nil {
		last = asap
	}
	if gantt {
		var overlay *cawosched.Profile
		if zoneSet.Single() {
			overlay = zoneSet.Profile(0)
		}
		fmt.Println()
		fmt.Print(cawosched.Gantt(inst, last, zoneSet.T(), cawosched.GanttOptions{Width: 100, MaxProcs: 12, Profile: overlay}))
	}
	if jsonOut != "" {
		f, err := os.Create(jsonOut)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := cawosched.WriteScheduleJSON(f, inst, last); err != nil {
			return err
		}
	}
	if csvOut != "" {
		f, err := os.Create(csvOut)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := cawosched.WriteScheduleCSV(f, inst, last); err != nil {
			return err
		}
	}
	return nil
}

// loadIntensityZones reads the comma-separated per-zone intensity CSVs
// and converts them into the per-zone supply over horizon T. A single
// file serves the whole cluster only when the cluster has one zone;
// otherwise one file per zone is required.
func loadIntensityZones(inst *cawosched.Instance, files string, T int64) (*cawosched.ZoneSet, error) {
	var traces [][]cawosched.TracePoint
	for _, name := range strings.Split(files, ",") {
		name = strings.TrimSpace(name)
		f, err := os.Open(name)
		if err != nil {
			return nil, err
		}
		pts, err := cawosched.ReadIntensityCSV(f)
		f.Close()
		if err != nil {
			return nil, fmt.Errorf("%s: %w", name, err)
		}
		traces = append(traces, pts)
	}
	return cawosched.ZonesFromIntensity(inst, traces, T)
}

func loadWorkflow(family string, n int, dotFile string, seed uint64) (*cawosched.DAG, error) {
	if dotFile != "" {
		f, err := os.Open(dotFile)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return cawosched.ReadWorkflowDOT(f)
	}
	fam, err := parseFamily(family)
	if err != nil {
		return nil, err
	}
	return cawosched.GenerateWorkflow(fam, n, seed)
}

func parseFamily(name string) (cawosched.Family, error) {
	for _, f := range wfgen.Families() {
		if f.String() == name {
			return f, nil
		}
	}
	return 0, fmt.Errorf("unknown family %q (want atacseq, bacass, eager or methylseq)", name)
}

func parseScenario(name string) (cawosched.Scenario, error) {
	// The shared parser also backs the schedd wire format, so CLI and
	// service accept exactly the same spellings.
	return power.ParseScenario(name)
}

// selectVariants resolves -variant into registry names: "all" is every
// registered variant, "asap" is the baseline only (empty list), anything
// else must resolve through the registry.
func selectVariants(name string) ([]string, error) {
	switch name {
	case "asap":
		return nil, nil
	case "all":
		return cawosched.VariantNames(), nil
	}
	opt, err := cawosched.LookupVariant(name)
	if err != nil {
		return nil, fmt.Errorf("%w (want all, asap, or one of %s)",
			err, strings.Join(cawosched.VariantNames(), ", "))
	}
	return []string{opt.Name()}, nil
}

func printSchedule(inst *cawosched.Instance, s *cawosched.Schedule) {
	for v := 0; v < inst.N(); v++ {
		kind := "task"
		if inst.IsComm(v) {
			kind = "comm"
		}
		fmt.Printf("    %s %-24s proc %-4d start %-8d end %d\n",
			kind, inst.G.Tasks[v].Name, inst.Proc[v], s.Start[v], s.Start[v]+inst.Dur[v])
	}
}
