// Command schedbench is the load harness of the serving path: it drives
// mixed or thundering-herd traffic against a schedd — an in-process one it
// spins up itself (default), or a remote one via -addr — and reports
// latency percentiles, throughput, coalesce rate, and cache hit rate as a
// JSON artifact, so "serves N req/s" is a regression-tested number instead
// of a claim.
//
// Scenarios:
//
//	herd   -waves waves of -concurrency identical requests on a fresh
//	       solve key each wave, started together: the singleflight
//	       acceptance scenario. Ideal coalesce rate is (C-1)/C per wave.
//	mixed  -requests total requests over -concurrency workers; each picks
//	       one of -hot-keys pre-warmed hot keys with probability
//	       -hot-ratio, else a cold key of its own. -batch groups requests
//	       into /v1/solve/batch bodies; -map-search turns every request
//	       into the two-pass mapping search.
//	fleet  -peers in-process schedd instances sharing one consistent-hash
//	       peer ring (the `-cache-tier peers:` deployment in miniature).
//	       Hot keys are warmed on peer 0 only, then the mixed stream is
//	       routed round-robin across all peers: every other peer's first
//	       sight of a hot key must be a cross-process tier hit. The
//	       report adds the fleet's per-peer-summed tier counters and the
//	       tier hit rate (tier hits / tier lookups).
//
// Rates are computed from the response bodies themselves (cache_hit and
// coalesced flags), so in-process and remote targets are measured
// identically. A positive -min-coalesce-rate makes the run fail when the
// measured coalesce rate falls below it (the CI smoke gate);
// -min-tier-hit-rate is the same gate for the fleet scenario's tier hit
// rate, which also fails the run on any tier error or timeout.
//
// Usage:
//
//	schedbench -scenario herd -concurrency 16 -waves 8 -out bench.json
//	schedbench -scenario mixed -requests 400 -hot-ratio 0.8 -addr http://host:8080
//	schedbench -scenario fleet -peers 3 -requests 300 -min-tier-hit-rate 0.05
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"sort"
	"strings"
	"sync"
	"time"

	cawosched "repro"
	"repro/internal/server"
	"repro/internal/wire"
)

// options collects every flag-settable knob of the harness.
type options struct {
	addr        string
	scenario    string
	concurrency int
	waves       int
	requests    int
	hotRatio    float64
	hotKeys     int
	batch       int
	mapSearch   bool
	variant     string
	tasks       int
	cluster     string
	zones       int
	seed        uint64
	shards      int
	coalesce    bool
	timeout     time.Duration
	out         string
	minCoalesce float64
	peers       int
	minTierHit  float64
}

func main() {
	var opt options
	flag.StringVar(&opt.addr, "addr", "", "base URL of a running schedd (empty = spin up an in-process server)")
	flag.StringVar(&opt.scenario, "scenario", "herd", "traffic shape: herd | mixed | fleet")
	flag.IntVar(&opt.concurrency, "concurrency", 16, "concurrent clients (herd: requests per wave)")
	flag.IntVar(&opt.waves, "waves", 8, "herd: waves of identical requests, each on a fresh solve key")
	flag.IntVar(&opt.requests, "requests", 256, "mixed: total requests")
	flag.Float64Var(&opt.hotRatio, "hot-ratio", 0.8, "mixed: probability a request reuses a hot key")
	flag.IntVar(&opt.hotKeys, "hot-keys", 4, "mixed: number of distinct pre-warmed hot keys")
	flag.IntVar(&opt.batch, "batch", 0, "mixed: group requests into /v1/solve/batch bodies of this size (0 = single solves)")
	flag.BoolVar(&opt.mapSearch, "map-search", false, "request the two-pass mapping search")
	flag.StringVar(&opt.variant, "variant", "pressWR-LS", "scheduling variant for every request")
	flag.IntVar(&opt.tasks, "tasks", 60, "workflow size (tasks) of the generated DAG")
	flag.StringVar(&opt.cluster, "cluster", "small", "in-process target cluster: small | large")
	flag.IntVar(&opt.zones, "zones", 1, "in-process cluster grid zones")
	flag.Uint64Var(&opt.seed, "seed", 7, "workflow/cluster generation seed")
	flag.IntVar(&opt.shards, "cache-shards", 0, "in-process solver cache shards (0 = auto)")
	flag.BoolVar(&opt.coalesce, "coalesce", true, "in-process solver request coalescing")
	flag.DurationVar(&opt.timeout, "timeout", 60*time.Second, "per-request client timeout")
	flag.StringVar(&opt.out, "out", "", "write the JSON report here (empty = stdout)")
	flag.Float64Var(&opt.minCoalesce, "min-coalesce-rate", 0, "fail when the measured coalesce rate is below this (0 = no gate)")
	flag.IntVar(&opt.peers, "peers", 3, "fleet: in-process schedd instances sharing the peer ring")
	flag.Float64Var(&opt.minTierHit, "min-tier-hit-rate", 0, "fleet: fail when the tier hit rate is below this or any tier error/timeout occurred (0 = no gate)")
	flag.Parse()

	rep, err := run(opt)
	if err != nil {
		fmt.Fprintln(os.Stderr, "schedbench:", err)
		os.Exit(1)
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "schedbench:", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if opt.out == "" {
		os.Stdout.Write(data)
	} else if err := os.WriteFile(opt.out, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "schedbench:", err)
		os.Exit(1)
	}
	if opt.minCoalesce > 0 && rep.CoalesceRate < opt.minCoalesce {
		fmt.Fprintf(os.Stderr, "schedbench: coalesce rate %.3f below the -min-coalesce-rate gate %.3f\n",
			rep.CoalesceRate, opt.minCoalesce)
		os.Exit(1)
	}
	if opt.minTierHit > 0 {
		if rep.TierHitRate < opt.minTierHit {
			fmt.Fprintf(os.Stderr, "schedbench: tier hit rate %.3f below the -min-tier-hit-rate gate %.3f\n",
				rep.TierHitRate, opt.minTierHit)
			os.Exit(1)
		}
		if rep.TierErrors+rep.TierTimeouts > 0 {
			fmt.Fprintf(os.Stderr, "schedbench: fleet recorded %d tier errors and %d timeouts, want none\n",
				rep.TierErrors, rep.TierTimeouts)
			os.Exit(1)
		}
	}
}

// report is the committed JSON artifact: one run's configuration and
// measurements.
type report struct {
	Scenario    string  `json:"scenario"`
	Target      string  `json:"target"` // "in-process" or the remote base URL
	Concurrency int     `json:"concurrency"`
	Waves       int     `json:"waves,omitempty"`
	HotRatio    float64 `json:"hot_ratio,omitempty"`
	HotKeys     int     `json:"hot_keys,omitempty"`
	Batch       int     `json:"batch,omitempty"`
	MapSearch   bool    `json:"map_search,omitempty"`
	Variant     string  `json:"variant"`
	Tasks       int     `json:"tasks"`
	Peers       int     `json:"peers,omitempty"`

	Requests    int     `json:"requests"`
	Errors      int     `json:"errors"`
	Coalesced   int     `json:"coalesced"`
	CacheHits   int     `json:"cache_hits"`
	WallSeconds float64 `json:"wall_seconds"`

	// Fleet-scenario tier counters, summed over every peer's PeerTier
	// (lookups actually sent to ring owners and their outcomes).
	TierGets     int64 `json:"tier_gets,omitempty"`
	TierHits     int64 `json:"tier_hits,omitempty"`
	TierErrors   int64 `json:"tier_errors,omitempty"`
	TierTimeouts int64 `json:"tier_timeouts,omitempty"`

	ThroughputRPS float64 `json:"throughput_rps"`
	CoalesceRate  float64 `json:"coalesce_rate"`
	CacheHitRate  float64 `json:"cache_hit_rate"`
	TierHitRate   float64 `json:"tier_hit_rate,omitempty"`
	LatencyMsP50  float64 `json:"latency_ms_p50"`
	LatencyMsP95  float64 `json:"latency_ms_p95"`
	LatencyMsP99  float64 `json:"latency_ms_p99"`
}

// sample is one finished request.
type sample struct {
	latency   time.Duration
	coalesced bool
	cacheHit  bool
	err       error
}

// run executes one scenario and aggregates the report. Split from main so
// the harness is testable in-process.
func run(opt options) (*report, error) {
	wf, err := cawosched.GenerateWorkflow(cawosched.Methylseq, opt.tasks, opt.seed)
	if err != nil {
		return nil, err
	}
	wwf := wire.FromDAG(wf)
	reqFor := func(seed uint64) *wire.SolveRequest {
		r := &wire.SolveRequest{Workflow: wwf, Variant: opt.variant, Scenario: "S1", Seed: seed}
		if opt.mapSearch {
			r.Mapping = "map-search"
		}
		return r
	}
	if opt.scenario == "fleet" {
		return runFleet(opt, reqFor)
	}

	base, client, cleanup, err := target(opt)
	if err != nil {
		return nil, err
	}
	defer cleanup()

	var samples []sample
	var wall time.Duration
	switch opt.scenario {
	case "herd":
		samples, wall, err = runHerd(opt, base, client, reqFor)
	case "mixed":
		samples, wall, err = runMixed(opt, base, client, reqFor)
	default:
		err = fmt.Errorf("unknown scenario %q (want herd, mixed, or fleet)", opt.scenario)
	}
	if err != nil {
		return nil, err
	}
	return summarize(opt, samples, wall), nil
}

// benchCluster resolves the in-process target cluster by name.
func benchCluster(opt options) (*cawosched.Cluster, error) {
	switch opt.cluster {
	case "small":
		return cawosched.SmallZonedCluster(opt.seed, opt.zones), nil
	case "large":
		return cawosched.LargeZonedCluster(opt.seed, opt.zones), nil
	default:
		return nil, fmt.Errorf("unknown cluster %q (want small or large)", opt.cluster)
	}
}

// runFleet boots -peers in-process schedd instances sharing one peer
// ring, warms the hot keys on peer 0 only, then drives the mixed request
// stream round-robin across all peers: every other peer's first sight of
// a hot key is served over the ring. It returns a finished report — the
// fleet's tier counters come from the tiers themselves, which the
// per-target summarize path has no access to.
func runFleet(opt options, reqFor func(uint64) *wire.SolveRequest) (*report, error) {
	if opt.addr != "" {
		return nil, fmt.Errorf("fleet is in-process only; -addr is not supported")
	}
	if opt.peers < 2 {
		return nil, fmt.Errorf("fleet needs -peers >= 2, got %d", opt.peers)
	}
	if opt.hotKeys < 1 || opt.hotRatio < 0 || opt.hotRatio > 1 {
		return nil, fmt.Errorf("want -hot-keys >= 1 and -hot-ratio in [0,1]")
	}
	cluster, err := benchCluster(opt)
	if err != nil {
		return nil, err
	}
	tiers := make([]*cawosched.PeerTier, opt.peers)
	bases := make([]string, opt.peers)
	clients := make([]*http.Client, opt.peers)
	hosts := make([]string, opt.peers)
	for i := range tiers {
		tier, err := cawosched.NewPeerTier(nil, cawosched.PeerTierOptions{})
		if err != nil {
			return nil, err
		}
		solver := cawosched.NewSolver(cluster,
			cawosched.WithCacheShards(opt.shards),
			cawosched.WithCoalescing(opt.coalesce),
			cawosched.WithCacheTier(tier),
		)
		ts := httptest.NewServer(server.New(solver, server.Config{
			SearchWorkers: 4,
			BatchWorkers:  opt.concurrency,
			PeerTier:      tier,
		}))
		defer ts.Close()
		client := ts.Client()
		client.Timeout = opt.timeout
		if tr, ok := client.Transport.(*http.Transport); ok {
			tr.MaxIdleConns = opt.concurrency + 2
			tr.MaxIdleConnsPerHost = opt.concurrency + 2
		}
		tiers[i], bases[i], clients[i] = tier, ts.URL, client
		hosts[i] = ts.Listener.Addr().String()
	}
	// Every instance ranks the same host list, so the ring agrees fleet-wide.
	for _, tier := range tiers {
		if err := tier.SetPeers(hosts); err != nil {
			return nil, err
		}
	}

	// Warm the hot keys on peer 0 only; their records ship asynchronously
	// to each key's ring owner, so wait for all of them to land before the
	// timed window opens.
	for k := 0; k < opt.hotKeys; k++ {
		if s := postSolve(clients[0], bases[0], reqFor(uint64(k+1))); s.err != nil {
			return nil, fmt.Errorf("warming hot key %d: %w", k, s.err)
		}
	}
	deadline := time.Now().Add(30 * time.Second)
	for {
		total := 0
		for _, tier := range tiers {
			total += tier.Local().Len()
		}
		if total >= opt.hotKeys {
			break
		}
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("only %d of %d warm records reached the ring", total, opt.hotKeys)
		}
		time.Sleep(2 * time.Millisecond)
	}

	// The mixed deterministic stream, routed round-robin across peers.
	reqs := make([]*wire.SolveRequest, opt.requests)
	lcg := opt.seed*6364136223846793005 + 1442695040888963407
	cold := uint64(3_000_000_019)
	for i := range reqs {
		lcg = lcg*6364136223846793005 + 1442695040888963407
		if float64(lcg>>11)/float64(1<<53) < opt.hotRatio {
			reqs[i] = reqFor(uint64(int(lcg>>54)%opt.hotKeys) + 1)
		} else {
			cold++
			reqs[i] = reqFor(cold)
		}
	}
	samples := make([]sample, len(reqs))
	var wg sync.WaitGroup
	work := make(chan int)
	for c := 0; c < opt.concurrency; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range work {
				p := i % opt.peers
				samples[i] = postSolve(clients[p], bases[p], reqs[i])
			}
		}()
	}
	start := time.Now()
	for i := range reqs {
		work <- i
	}
	close(work)
	wg.Wait()
	wall := time.Since(start)

	rep := summarize(opt, samples, wall)
	rep.Peers = opt.peers
	for _, tier := range tiers {
		for _, ps := range tier.Stats() {
			rep.TierGets += ps.Gets
			rep.TierHits += ps.Hits
			rep.TierErrors += ps.Errors
			rep.TierTimeouts += ps.Timeouts
		}
	}
	if rep.TierGets > 0 {
		rep.TierHitRate = float64(rep.TierHits) / float64(rep.TierGets)
	}
	return rep, nil
}

// target resolves the base URL and client: the remote -addr, or a fresh
// in-process schedd over a loopback listener (so both paths measure the
// full HTTP serving stack).
func target(opt options) (base string, client *http.Client, cleanup func(), err error) {
	if opt.addr != "" {
		tr := http.DefaultTransport.(*http.Transport).Clone()
		tr.MaxIdleConns = opt.concurrency + 2
		tr.MaxIdleConnsPerHost = opt.concurrency + 2
		return strings.TrimRight(opt.addr, "/"), &http.Client{Timeout: opt.timeout, Transport: tr}, func() {}, nil
	}
	cluster, err := benchCluster(opt)
	if err != nil {
		return "", nil, nil, err
	}
	solver := cawosched.NewSolver(cluster,
		cawosched.WithCacheShards(opt.shards),
		cawosched.WithCoalescing(opt.coalesce),
	)
	// Parallel search workers keep the solve preemptible (channel
	// handoffs are scheduler yield points), so on few-core hosts follower
	// requests still reach the in-flight solve instead of queueing behind
	// it; search parallelism never changes the response bytes.
	ts := httptest.NewServer(server.New(solver, server.Config{
		SearchWorkers: 4,
		BatchWorkers:  opt.concurrency,
	}))
	client = ts.Client()
	client.Timeout = opt.timeout
	if tr, ok := client.Transport.(*http.Transport); ok {
		tr.MaxIdleConns = opt.concurrency + 2
		tr.MaxIdleConnsPerHost = opt.concurrency + 2
	}
	return ts.URL, client, ts.Close, nil
}

// preconnect fills the client's connection pool with opt.concurrency warm
// connections (concurrent health checks), so a herd wave's requests pay no
// dial latency and arrive at the server as close together as the client
// host allows.
func preconnect(opt options, base string, client *http.Client) {
	var wg sync.WaitGroup
	release := make(chan struct{})
	for c := 0; c < opt.concurrency; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-release
			resp, err := client.Get(base + "/healthz")
			if err == nil {
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		}()
	}
	close(release)
	wg.Wait()
}

// runHerd fires -waves waves of -concurrency identical requests, each wave
// on a fresh solve key (a fresh profile seed), all starters released
// together.
func runHerd(opt options, base string, client *http.Client, reqFor func(uint64) *wire.SolveRequest) ([]sample, time.Duration, error) {
	if opt.concurrency < 2 {
		return nil, 0, fmt.Errorf("herd needs -concurrency >= 2, got %d", opt.concurrency)
	}
	preconnect(opt, base, client)
	var samples []sample
	start := time.Now()
	for w := 0; w < opt.waves; w++ {
		req := reqFor(1_000_000_007 + uint64(w)) // fresh key per wave
		wave := make([]sample, opt.concurrency)
		release := make(chan struct{})
		var wg sync.WaitGroup
		for c := 0; c < opt.concurrency; c++ {
			wg.Add(1)
			go func(c int) {
				defer wg.Done()
				<-release
				wave[c] = postSolve(client, base, req)
			}(c)
		}
		close(release)
		wg.Wait()
		samples = append(samples, wave...)
	}
	return samples, time.Since(start), nil
}

// runMixed fires -requests requests over -concurrency workers: hot keys
// (pre-warmed, zipf-less uniform choice among -hot-keys) with probability
// -hot-ratio, unique cold keys otherwise. With -batch > 0 requests are
// grouped into batch bodies.
func runMixed(opt options, base string, client *http.Client, reqFor func(uint64) *wire.SolveRequest) ([]sample, time.Duration, error) {
	if opt.hotKeys < 1 || opt.hotRatio < 0 || opt.hotRatio > 1 {
		return nil, 0, fmt.Errorf("want -hot-keys >= 1 and -hot-ratio in [0,1]")
	}
	// Warm the hot keys outside the timed window.
	for k := 0; k < opt.hotKeys; k++ {
		if s := postSolve(client, base, reqFor(uint64(k+1))); s.err != nil {
			return nil, 0, fmt.Errorf("warming hot key %d: %w", k, s.err)
		}
	}
	// Pre-plan the request stream deterministically: a tiny LCG decides
	// hot vs cold, so runs are reproducible without consulting math/rand.
	reqs := make([]*wire.SolveRequest, opt.requests)
	lcg := opt.seed*6364136223846793005 + 1442695040888963407
	cold := uint64(2_000_000_011)
	for i := range reqs {
		lcg = lcg*6364136223846793005 + 1442695040888963407
		if float64(lcg>>11)/float64(1<<53) < opt.hotRatio {
			reqs[i] = reqFor(uint64(int(lcg>>54)%opt.hotKeys) + 1)
		} else {
			cold++
			reqs[i] = reqFor(cold)
		}
	}

	samples := make([]sample, 0, opt.requests)
	var mu sync.Mutex
	var wg sync.WaitGroup
	work := make(chan []*wire.SolveRequest)
	for c := 0; c < opt.concurrency; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for group := range work {
				var got []sample
				if len(group) == 1 && opt.batch == 0 {
					got = []sample{postSolve(client, base, group[0])}
				} else {
					got = postBatch(client, base, group)
				}
				mu.Lock()
				samples = append(samples, got...)
				mu.Unlock()
			}
		}()
	}
	start := time.Now()
	group := 1
	if opt.batch > 0 {
		group = opt.batch
	}
	for i := 0; i < len(reqs); i += group {
		end := i + group
		if end > len(reqs) {
			end = len(reqs)
		}
		work <- reqs[i:end]
	}
	close(work)
	wg.Wait()
	return samples, time.Since(start), nil
}

// postSolve measures one POST /v1/solve.
func postSolve(client *http.Client, base string, req *wire.SolveRequest) sample {
	body, err := json.Marshal(req)
	if err != nil {
		return sample{err: err}
	}
	start := time.Now()
	resp, err := client.Post(base+"/v1/solve", "application/json", bytes.NewReader(body))
	if err != nil {
		return sample{latency: time.Since(start), err: err}
	}
	raw, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	lat := time.Since(start)
	if err != nil {
		return sample{latency: lat, err: err}
	}
	if resp.StatusCode != http.StatusOK {
		return sample{latency: lat, err: fmt.Errorf("status %d: %s", resp.StatusCode, truncate(raw))}
	}
	var sr wire.SolveResponse
	if err := json.Unmarshal(raw, &sr); err != nil {
		return sample{latency: lat, err: err}
	}
	return sample{latency: lat, coalesced: sr.Coalesced, cacheHit: sr.CacheHit}
}

// postBatch measures one POST /v1/solve/batch; the batch's wall time is
// attributed to each item (that is the latency its submitter saw).
func postBatch(client *http.Client, base string, reqs []*wire.SolveRequest) []sample {
	items := make([]wire.SolveRequest, len(reqs))
	for i, r := range reqs {
		items[i] = *r
	}
	body, err := json.Marshal(&wire.BatchRequest{Requests: items})
	if err != nil {
		return errSamples(len(reqs), 0, err)
	}
	start := time.Now()
	resp, err := client.Post(base+"/v1/solve/batch", "application/json", bytes.NewReader(body))
	if err != nil {
		return errSamples(len(reqs), time.Since(start), err)
	}
	raw, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	lat := time.Since(start)
	if err != nil {
		return errSamples(len(reqs), lat, err)
	}
	if resp.StatusCode != http.StatusOK {
		return errSamples(len(reqs), lat, fmt.Errorf("status %d: %s", resp.StatusCode, truncate(raw)))
	}
	var br wire.BatchResponse
	if err := json.Unmarshal(raw, &br); err != nil {
		return errSamples(len(reqs), lat, err)
	}
	out := make([]sample, 0, len(br.Results))
	for _, item := range br.Results {
		s := sample{latency: lat}
		switch {
		case item.Error != nil:
			s.err = fmt.Errorf("%s: %s", item.Error.Code, item.Error.Message)
		case item.Response != nil:
			s.coalesced, s.cacheHit = item.Response.Coalesced, item.Response.CacheHit
		default:
			s.err = fmt.Errorf("batch item %d carries neither response nor error", item.Index)
		}
		out = append(out, s)
	}
	return out
}

func errSamples(n int, lat time.Duration, err error) []sample {
	out := make([]sample, n)
	for i := range out {
		out[i] = sample{latency: lat, err: err}
	}
	return out
}

func truncate(raw []byte) string {
	s := string(raw)
	if len(s) > 200 {
		s = s[:200] + "…"
	}
	return s
}

// summarize folds the samples into the report.
func summarize(opt options, samples []sample, wall time.Duration) *report {
	rep := &report{
		Scenario:    opt.scenario,
		Target:      "in-process",
		Concurrency: opt.concurrency,
		Variant:     opt.variant,
		Tasks:       opt.tasks,
		Requests:    len(samples),
		WallSeconds: wall.Seconds(),
	}
	if opt.addr != "" {
		rep.Target = opt.addr
	}
	if opt.scenario == "herd" {
		rep.Waves = opt.waves
	} else {
		rep.HotRatio = opt.hotRatio
		rep.HotKeys = opt.hotKeys
		rep.Batch = opt.batch
	}
	rep.MapSearch = opt.mapSearch

	lats := make([]time.Duration, 0, len(samples))
	for _, s := range samples {
		if s.err != nil {
			rep.Errors++
			continue
		}
		lats = append(lats, s.latency)
		if s.coalesced {
			rep.Coalesced++
		}
		if s.cacheHit {
			rep.CacheHits++
		}
	}
	if n := len(lats); n > 0 {
		sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
		pct := func(p float64) float64 {
			idx := int(p*float64(n-1) + 0.5)
			return float64(lats[idx].Microseconds()) / 1000
		}
		rep.LatencyMsP50 = pct(0.50)
		rep.LatencyMsP95 = pct(0.95)
		rep.LatencyMsP99 = pct(0.99)
	}
	if ok := len(samples) - rep.Errors; ok > 0 {
		rep.CoalesceRate = float64(rep.Coalesced) / float64(ok)
		rep.CacheHitRate = float64(rep.CacheHits) / float64(ok)
	}
	if wall > 0 {
		rep.ThroughputRPS = float64(len(samples)) / wall.Seconds()
	}
	return rep
}
