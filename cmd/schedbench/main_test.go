package main

import (
	"encoding/json"
	"path/filepath"
	"testing"
	"time"
)

// baseOptions mirrors the flag defaults small enough for a test run.
func baseOptions() options {
	return options{
		scenario:    "herd",
		concurrency: 8,
		waves:       3,
		requests:    48,
		hotRatio:    0.75,
		hotKeys:     2,
		variant:     "pressWR-LS",
		tasks:       40,
		cluster:     "small",
		zones:       1,
		seed:        7,
		coalesce:    true,
		timeout:     60 * time.Second,
	}
}

// TestHerdScenario is the harness's own acceptance smoke: a thundering
// herd against an in-process schedd must coalesce the overwhelming
// majority of requests — at most one computed solve per wave, everything
// else coalesced or cache-served, and zero errors.
func TestHerdScenario(t *testing.T) {
	opt := baseOptions()
	rep, err := run(opt)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Requests != opt.concurrency*opt.waves {
		t.Fatalf("requests = %d, want %d", rep.Requests, opt.concurrency*opt.waves)
	}
	if rep.Errors != 0 {
		t.Fatalf("errors = %d, want 0", rep.Errors)
	}
	// Per wave: 1 leader computes, the rest coalesce or (if they arrive
	// after the leader finished) hit the cache.
	if got, want := rep.Coalesced+rep.CacheHits, (opt.concurrency-1)*opt.waves; got != want {
		t.Fatalf("coalesced(%d) + cache hits(%d) = %d, want %d", rep.Coalesced, rep.CacheHits, got, want)
	}
	if rep.Coalesced == 0 {
		t.Fatal("herd produced zero coalesced requests")
	}
	if rep.CoalesceRate <= 0 || rep.CoalesceRate > 1 {
		t.Fatalf("coalesce rate = %v, want in (0,1]", rep.CoalesceRate)
	}
	if rep.ThroughputRPS <= 0 || rep.LatencyMsP50 <= 0 || rep.LatencyMsP99 < rep.LatencyMsP50 {
		t.Fatalf("implausible measurements: %+v", rep)
	}
}

// TestMixedScenario covers the hot/cold generator, the batch path, and
// the JSON artifact round trip.
func TestMixedScenario(t *testing.T) {
	opt := baseOptions()
	opt.scenario = "mixed"
	opt.concurrency = 4
	opt.batch = 4
	rep, err := run(opt)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Requests != opt.requests {
		t.Fatalf("requests = %d, want %d", rep.Requests, opt.requests)
	}
	if rep.Errors != 0 {
		t.Fatalf("errors = %d, want 0", rep.Errors)
	}
	// Hot keys are pre-warmed, so at 75% hot ratio a solid majority of
	// requests must be served from cache (coalescing may convert some).
	if rep.CacheHits+rep.Coalesced < opt.requests/2 {
		t.Fatalf("cache hits(%d) + coalesced(%d) below half of %d requests", rep.CacheHits, rep.Coalesced, opt.requests)
	}

	// The artifact is valid JSON that round-trips the headline numbers.
	out := filepath.Join(t.TempDir(), "rep.json")
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	var back report
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.ThroughputRPS != rep.ThroughputRPS || back.CoalesceRate != rep.CoalesceRate {
		t.Fatalf("artifact round trip changed numbers: %+v vs %+v", back, rep)
	}
	_ = out
}

// TestMixedMapSearch exercises the map-search request shape end to end.
func TestMixedMapSearch(t *testing.T) {
	opt := baseOptions()
	opt.scenario = "mixed"
	opt.requests = 12
	opt.concurrency = 3
	opt.hotKeys = 1
	opt.mapSearch = true
	rep, err := run(opt)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Errors != 0 {
		t.Fatalf("errors = %d, want 0", rep.Errors)
	}
	if !rep.MapSearch {
		t.Fatal("report does not record map_search")
	}
}

// TestFleetScenario is the peer-ring acceptance smoke: hot keys warmed
// on peer 0 only must reach the other peers through the tier — at least
// one cross-process tier hit per non-warming peer — with zero request
// errors and zero tier errors or timeouts.
func TestFleetScenario(t *testing.T) {
	opt := baseOptions()
	opt.scenario = "fleet"
	opt.peers = 3
	opt.concurrency = 4
	opt.requests = 60
	rep, err := run(opt)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Peers != 3 || rep.Requests != opt.requests {
		t.Fatalf("report = %+v, want 3 peers, %d requests", rep, opt.requests)
	}
	if rep.Errors != 0 {
		t.Fatalf("request errors = %d, want 0", rep.Errors)
	}
	if rep.TierErrors != 0 || rep.TierTimeouts != 0 {
		t.Fatalf("tier errors = %d, timeouts = %d, want 0/0", rep.TierErrors, rep.TierTimeouts)
	}
	// Each of the two non-warming peers sees each hot key cold exactly
	// once and must fetch it over the ring.
	if want := int64(opt.hotKeys * (opt.peers - 1)); rep.TierHits < want {
		t.Errorf("tier hits = %d, want >= %d (each non-warming peer's first sight of each hot key)", rep.TierHits, want)
	}
	if rep.TierGets < rep.TierHits {
		t.Errorf("tier gets %d < hits %d", rep.TierGets, rep.TierHits)
	}
	if rep.TierHitRate <= 0 || rep.TierHitRate > 1 {
		t.Errorf("tier hit rate = %v, want in (0,1]", rep.TierHitRate)
	}
}

// TestRunRejectsBadConfig pins the error paths.
func TestRunRejectsBadConfig(t *testing.T) {
	for _, mod := range []func(*options){
		func(o *options) { o.scenario = "storm" },
		func(o *options) { o.cluster = "galactic" },
		func(o *options) { o.concurrency = 1 },
		func(o *options) { o.scenario = "mixed"; o.hotRatio = 1.5 },
		func(o *options) { o.scenario = "mixed"; o.hotKeys = 0 },
		func(o *options) { o.scenario = "fleet"; o.peers = 1 },
		func(o *options) { o.scenario = "fleet"; o.peers = 2; o.addr = "http://x" },
		func(o *options) { o.scenario = "fleet"; o.peers = 2; o.hotKeys = 0 },
	} {
		opt := baseOptions()
		mod(&opt)
		if _, err := run(opt); err == nil {
			t.Errorf("config %+v unexpectedly accepted", opt)
		}
	}
}
