package cawosched_test

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	cawosched "repro"
)

// TestSolverPlanCache is the memoization acceptance property: a repeated
// Solve for the same workflow fingerprint must skip HEFT re-planning,
// observable through the solver's cache-hit counter and the response's
// PlanHit flag.
func TestSolverPlanCache(t *testing.T) {
	wf, err := cawosched.GenerateWorkflow(cawosched.Bacass, 50, 9)
	if err != nil {
		t.Fatal(err)
	}
	solver := cawosched.NewSolver(cawosched.SmallCluster(9))
	req := cawosched.Request{Workflow: wf, Variant: "press", Seed: 9}

	first, err := solver.Solve(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if first.PlanHit {
		t.Error("first solve reported a plan cache hit")
	}
	second, err := solver.Solve(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if !second.PlanHit {
		t.Error("second solve re-planned instead of hitting the cache")
	}
	if first.Instance != second.Instance {
		t.Error("cache hit returned a different instance pointer")
	}
	if st := solver.Stats(); st.PlanHits != 1 || st.PlanMisses != 1 || st.Solves != 2 {
		t.Errorf("stats = %+v, want 1 hit, 1 miss, 2 solves", st)
	}

	// A structurally different workflow must miss.
	wf2, err := cawosched.GenerateWorkflow(cawosched.Bacass, 50, 10)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := solver.Solve(context.Background(), cawosched.Request{Workflow: wf2, Variant: "press", Seed: 9}); err != nil {
		t.Fatal(err)
	}
	if st := solver.Stats(); st.PlanMisses != 2 {
		t.Errorf("different workflow did not miss: %+v", st)
	}
}

// TestSolverConcurrent shares one solver across many goroutines spanning
// variants and seeds (run with -race in CI, -count=2 to reuse warm state):
// every response must be internally consistent, and identical requests
// must produce identical costs regardless of interleaving.
func TestSolverConcurrent(t *testing.T) {
	wf, err := cawosched.GenerateWorkflow(cawosched.Eager, 60, 4)
	if err != nil {
		t.Fatal(err)
	}
	solver := cawosched.NewSolver(cawosched.SmallCluster(4))
	variants := []string{"slack", "slackWR-LS", "press", "pressWR-LS"}
	seeds := []uint64{1, 2}
	const replicas = 3 // identical requests racing each other

	type key struct {
		variant string
		seed    uint64
	}
	var mu sync.Mutex
	costs := map[key][]int64{}
	var wg sync.WaitGroup
	errCh := make(chan error, len(variants)*len(seeds)*replicas)
	for _, v := range variants {
		for _, seed := range seeds {
			for r := 0; r < replicas; r++ {
				wg.Add(1)
				go func(v string, seed uint64) {
					defer wg.Done()
					res, err := solver.Solve(context.Background(), cawosched.Request{
						Workflow: wf, Variant: v, Scenario: cawosched.S3, Seed: seed,
					})
					if err != nil {
						errCh <- err
						return
					}
					if err := cawosched.Validate(res.Instance, res.Schedule, res.Deadline); err != nil {
						errCh <- err
						return
					}
					mu.Lock()
					costs[key{v, seed}] = append(costs[key{v, seed}], res.Cost)
					mu.Unlock()
				}(v, seed)
			}
		}
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	for k, cs := range costs {
		for _, c := range cs[1:] {
			if c != cs[0] {
				t.Errorf("%v: racing identical requests disagreed: %v", k, cs)
				break
			}
		}
	}
	// All goroutines shared one plan: exactly one miss.
	if st := solver.Stats(); st.PlanMisses != 1 {
		t.Errorf("plan built %d times under concurrency, want 1", st.PlanMisses)
	}
}

// TestSolverCancellation is the cancellation acceptance property: a
// canceled context aborts Solve promptly with an error satisfying both
// errors.Is(err, context.Canceled) and errors.Is(err, ErrCanceled).
func TestSolverCancellation(t *testing.T) {
	wf, err := cawosched.GenerateWorkflow(cawosched.Methylseq, 400, 5)
	if err != nil {
		t.Fatal(err)
	}
	solver := cawosched.NewSolver(cawosched.SmallCluster(5))

	// Pre-canceled context: immediate, deterministic.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := solver.Solve(ctx, cawosched.Request{Workflow: wf}); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-canceled Solve: err = %v, want context.Canceled", err)
	} else if !errors.Is(err, cawosched.ErrCanceled) {
		t.Fatalf("pre-canceled Solve: err = %v, want ErrCanceled too", err)
	}

	// Mid-solve cancellation: cancel while the greedy/local search runs.
	// The hot loops poll every few hundred steps, so the call must return
	// well before the uncanceled runtime of a 400-task LS solve.
	ctx2, cancel2 := context.WithCancel(context.Background())
	go func() {
		time.Sleep(2 * time.Millisecond)
		cancel2()
	}()
	start := time.Now()
	_, err = solver.Solve(ctx2, cawosched.Request{Workflow: wf, Variant: "pressWR-LS", Seed: 5})
	if err != nil {
		if !errors.Is(err, context.Canceled) || !errors.Is(err, cawosched.ErrCanceled) {
			t.Fatalf("mid-solve cancel: err = %v, want Canceled chain", err)
		}
		var ce *cawosched.CanceledError
		if !errors.As(err, &ce) || ce.Cause == nil {
			t.Fatalf("mid-solve cancel: err = %#v, want *CanceledError with cause", err)
		}
		if took := time.Since(start); took > 10*time.Second {
			t.Errorf("cancellation took %s, want prompt return", took)
		}
	}
	// err == nil means the solve beat the 2ms cancel — acceptable on a
	// fast machine; the pre-canceled case above already pins the behavior.
}

// TestTypedErrors exercises errors.Is and errors.As for every structured
// error of the new API surface.
func TestTypedErrors(t *testing.T) {
	wf, err := cawosched.GenerateWorkflow(cawosched.Bacass, 40, 2)
	if err != nil {
		t.Fatal(err)
	}
	cluster := cawosched.SmallCluster(2)
	inst, err := cawosched.PlanHEFT(wf, cluster)
	if err != nil {
		t.Fatal(err)
	}
	D := cawosched.ASAPMakespan(inst)

	t.Run("infeasible deadline", func(t *testing.T) {
		prof := cawosched.ConstantProfile(D/2, 1) // horizon below the ASAP makespan
		_, _, err := cawosched.RunContext(context.Background(), inst, prof, cawosched.Options{})
		if !errors.Is(err, cawosched.ErrInfeasibleDeadline) {
			t.Fatalf("err = %v, want ErrInfeasibleDeadline", err)
		}
		var ie *cawosched.InfeasibleDeadlineError
		if !errors.As(err, &ie) || ie.Deadline != D/2 || ie.EST <= ie.LST {
			t.Fatalf("err = %#v, want *InfeasibleDeadlineError with empty window at T=%d", err, D/2)
		}
	})

	t.Run("budget exhausted", func(t *testing.T) {
		// A 5-task unit chain on one processor: the first DFS leaf is
		// found within the budget but the search space is not covered.
		const n = 5
		d := cawosched.NewWorkflow(n)
		order := make([]int, n)
		finish := make([]int64, n)
		for i := 0; i < n; i++ {
			order[i] = i
			finish[i] = int64(i + 1)
			if i > 0 {
				d.AddEdge(i-1, i, 1)
			}
		}
		uni := cawosched.NewCluster([]cawosched.ProcType{{Name: "U", Speed: 1, Idle: 0, Work: 1}}, []int{1}, 1)
		ti, err := cawosched.BuildInstance(d, &cawosched.Mapping{Proc: make([]int, n), Order: [][]int{order}, Finish: finish}, uni)
		if err != nil {
			t.Fatal(err)
		}
		prof := cawosched.ConstantProfile(40, 0)
		_, _, err = cawosched.OptimalScheduleContext(context.Background(), ti, prof, 10)
		if !errors.Is(err, cawosched.ErrBudgetExhausted) {
			t.Fatalf("err = %v, want ErrBudgetExhausted", err)
		}
		var be *cawosched.BudgetError
		if !errors.As(err, &be) || be.Nodes <= 0 {
			t.Fatalf("err = %#v, want *BudgetError with node count", err)
		}
	})

	t.Run("canceled", func(t *testing.T) {
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		prof := cawosched.ConstantProfile(2*D, 1)
		_, _, err := cawosched.RunContext(ctx, inst, prof, cawosched.Options{})
		if !errors.Is(err, cawosched.ErrCanceled) || !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want ErrCanceled and context.Canceled", err)
		}
		var ce *cawosched.CanceledError
		if !errors.As(err, &ce) || !errors.Is(ce.Cause, context.Canceled) {
			t.Fatalf("err = %#v, want *CanceledError wrapping context.Canceled", err)
		}
	})

	t.Run("deadline exceeded maps to canceled", func(t *testing.T) {
		ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
		defer cancel()
		prof := cawosched.ConstantProfile(2*D, 1)
		_, _, err := cawosched.RunContext(ctx, inst, prof, cawosched.Options{})
		if !errors.Is(err, cawosched.ErrCanceled) || !errors.Is(err, context.DeadlineExceeded) {
			t.Fatalf("err = %v, want ErrCanceled and context.DeadlineExceeded", err)
		}
	})

	t.Run("unknown variant", func(t *testing.T) {
		_, err := cawosched.LookupVariant("pressZR-LS")
		if !errors.Is(err, cawosched.ErrUnknownVariant) {
			t.Fatalf("err = %v, want ErrUnknownVariant", err)
		}
		var ue *cawosched.UnknownVariantError
		if !errors.As(err, &ue) || ue.Name != "pressZR-LS" || len(ue.Known) != 16 {
			t.Fatalf("err = %#v, want *UnknownVariantError listing 16 names", err)
		}
		solver := cawosched.NewSolver(cluster)
		if _, err := solver.Solve(context.Background(), cawosched.Request{Workflow: wf, Variant: "nope"}); !errors.Is(err, cawosched.ErrUnknownVariant) {
			t.Fatalf("Solve with unknown variant: err = %v", err)
		}
	})
}

// TestSolverRegistryAndDefaults pins the registry surface: 16 canonical
// names, case-insensitive lookup, and the solver default variant.
func TestSolverRegistryAndDefaults(t *testing.T) {
	names := cawosched.VariantNames()
	if len(names) != 16 {
		t.Fatalf("registry has %d names, want 16", len(names))
	}
	seen := map[string]bool{}
	for _, name := range names {
		if seen[name] {
			t.Fatalf("duplicate registry name %s", name)
		}
		seen[name] = true
		opt, err := cawosched.LookupVariant(name)
		if err != nil || opt.Name() != name {
			t.Fatalf("LookupVariant(%q) = %v, %v", name, opt.Name(), err)
		}
	}
	if !seen["slack"] || !seen["pressWR-LS"] {
		t.Error("canonical paper names missing from registry")
	}
	if opt, err := cawosched.LookupVariant("PRESSWR-ls"); err != nil || opt.Name() != "pressWR-LS" {
		t.Errorf("case-insensitive lookup failed: %v, %v", opt.Name(), err)
	}

	wf, err := cawosched.GenerateWorkflow(cawosched.Bacass, 40, 3)
	if err != nil {
		t.Fatal(err)
	}
	solver := cawosched.NewSolver(cawosched.SmallCluster(3))
	res, err := solver.Solve(context.Background(), cawosched.Request{Workflow: wf, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.Variant != cawosched.DefaultVariant {
		t.Errorf("default variant = %s, want %s", res.Variant, cawosched.DefaultVariant)
	}
	if res.Cost != res.Stats.Cost {
		t.Error("Response.Cost diverges from Stats.Cost")
	}
	if res.Deadline != res.Profile.T() {
		t.Error("Response.Deadline diverges from profile horizon")
	}
}

// TestSolverStagesCompose drives the Plan / ProfileFor / Solve stages
// individually, as a service precomputing shared state would.
func TestSolverStagesCompose(t *testing.T) {
	ctx := context.Background()
	wf, err := cawosched.GenerateWorkflow(cawosched.Atacseq, 45, 6)
	if err != nil {
		t.Fatal(err)
	}
	solver := cawosched.NewSolver(cawosched.SmallCluster(6))
	inst, hit, err := solver.Plan(ctx, wf)
	if err != nil || hit {
		t.Fatalf("Plan: hit=%v err=%v", hit, err)
	}
	req := cawosched.Request{Scenario: cawosched.S2, DeadlineFactor: 1.5, Intervals: 12, Seed: 6}
	prof, err := solver.ProfileFor(ctx, inst, req)
	if err != nil {
		t.Fatal(err)
	}
	if prof.J() != 12 {
		t.Errorf("profile has %d intervals, want 12", prof.J())
	}
	req.Instance = inst
	req.Profile = prof
	req.Variant = "slackR"
	res, err := solver.Solve(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if res.Profile != prof || res.Instance != inst {
		t.Error("Solve did not reuse the precomputed stages")
	}
	// The marginal greedy path must also validate (RunMarginal parity).
	req.Marginal = true
	mres, err := solver.Solve(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if err := cawosched.Validate(mres.Instance, mres.Schedule, mres.Deadline); err != nil {
		t.Errorf("marginal solve produced invalid schedule: %v", err)
	}
}
