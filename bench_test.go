// Benchmarks regenerating every table and figure of the paper's
// evaluation (Section 6 and Appendix A.5), plus the core algorithmic
// kernels. Each BenchmarkTableX/BenchmarkFigX target measures the
// regeneration of that artifact on a miniature corpus and reports a
// headline metric; `cmd/experiments` produces the full-size artifacts.
package cawosched_test

import (
	"context"

	"strconv"
	"strings"
	"sync"
	"testing"

	cawosched "repro"
	"repro/internal/core"
	"repro/internal/dp"
	"repro/internal/exact"
	"repro/internal/experiments"
	"repro/internal/npc"
	"repro/internal/obs"
	"repro/internal/platform"
	"repro/internal/power"
	"repro/internal/rng"
	"repro/internal/sim"
	"repro/internal/tenancy"
	"repro/internal/wfgen"
)

// ---- shared miniature corpus -------------------------------------------

var (
	benchOnce    sync.Once
	benchResults []experiments.Result
	benchNames   []string
	benchErr     error
)

func benchSpecs() []experiments.Spec {
	var specs []experiments.Spec
	for _, fam := range []wfgen.Family{wfgen.Bacass, wfgen.Eager} {
		for _, cl := range []experiments.ClusterSize{experiments.Small, experiments.Large} {
			for _, sc := range []power.Scenario{power.S1, power.S3} {
				for _, df := range experiments.DeadlineFactors() {
					specs = append(specs, experiments.Spec{
						Family: fam, N: 60, Cluster: cl, Scenario: sc,
						DeadlineFactor: df, Seed: 42,
					})
				}
			}
		}
	}
	return specs
}

func corpusResults(b *testing.B) ([]experiments.Result, []string) {
	b.Helper()
	benchOnce.Do(func() {
		algos := experiments.LSAlgorithms()
		benchNames = make([]string, len(algos))
		for i, a := range algos {
			benchNames[i] = a.Name
		}
		benchResults, benchErr = experiments.Run(context.Background(), benchSpecs(), algos, 0, nil)
	})
	if benchErr != nil {
		b.Fatal(benchErr)
	}
	return benchResults, benchNames
}

func firstFloat(b *testing.B, cell string) float64 {
	b.Helper()
	v, err := strconv.ParseFloat(cell, 64)
	if err != nil {
		b.Fatalf("bad cell %q: %v", cell, err)
	}
	return v
}

// ---- Table 1 -------------------------------------------------------------

func BenchmarkTable1ClusterBuild(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := experiments.Table1Platform()
		if len(t.Rows) != 6 {
			b.Fatal("Table 1 wrong")
		}
		c := platform.Large(uint64(i))
		if c.NumCompute() != 144 {
			b.Fatal("cluster wrong")
		}
	}
}

// ---- Figures 1-6, 8, 12-17 (main corpus) ---------------------------------

func BenchmarkFig1Ranks(b *testing.B) {
	results, names := corpusResults(b)
	b.ResetTimer()
	var asapRankLast float64
	for i := 0; i < b.N; i++ {
		t := experiments.Fig1Ranks(results, names)
		cell := strings.TrimSuffix(t.Rows[0][len(t.Rows[0])-1], "%")
		asapRankLast = firstFloat(b, cell)
	}
	b.ReportMetric(asapRankLast, "ASAP_last_rank_%")
}

func BenchmarkFig2PerfProfile(b *testing.B) {
	results, names := corpusResults(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t := experiments.Fig2PerfProfile(results, names)
		if len(t.Rows) != len(names) {
			b.Fatal("fig2 wrong")
		}
	}
}

func BenchmarkFig3PerfProfileByDeadline(b *testing.B) {
	results, names := corpusResults(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ts := experiments.Fig3PerfProfileByDeadline(results, names)
		if len(ts) != 4 {
			b.Fatal("fig3 wrong")
		}
	}
}

func BenchmarkFig4MedianCostRatio(b *testing.B) {
	results, names := corpusResults(b)
	b.ResetTimer()
	var medianRatio float64
	for i := 0; i < b.N; i++ {
		t := experiments.Fig4MedianCostRatio(results, names)
		medianRatio = firstFloat(b, t.Rows[len(t.Rows)-1][1]) // pressWR-LS
	}
	b.ReportMetric(medianRatio, "pressWR-LS_median_ratio")
}

func BenchmarkFig5CostRatioByDeadline(b *testing.B) {
	results, names := corpusResults(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(experiments.Fig5CostRatioByDeadline(results, names)) != 4 {
			b.Fatal("fig5 wrong")
		}
	}
}

func BenchmarkFig6BoxPlots(b *testing.B) {
	results, names := corpusResults(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(experiments.Fig6BoxPlots(results, names).Rows) == 0 {
			b.Fatal("fig6 wrong")
		}
	}
}

func BenchmarkFig8RunningTime(b *testing.B) {
	results, names := corpusResults(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(experiments.Fig8RunningTime(results, names).Rows) != len(names) {
			b.Fatal("fig8 wrong")
		}
	}
}

func BenchmarkFig12RunningTimeLarge(b *testing.B) {
	results, names := corpusResults(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(experiments.Fig12RunningTimeLarge(results, names).Rows) == 0 {
			b.Fatal("fig12 wrong")
		}
	}
}

func BenchmarkFig13RunningTimeByDeadline(b *testing.B) {
	results, names := corpusResults(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(experiments.Fig13RunningTimeByDeadline(results, names).Columns) != 5 {
			b.Fatal("fig13 wrong")
		}
	}
}

func BenchmarkFig14CostRatioByCluster(b *testing.B) {
	results, names := corpusResults(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(experiments.Fig14CostRatioByCluster(results, names)) != 2 {
			b.Fatal("fig14 wrong")
		}
	}
}

func BenchmarkFig15CostRatioByScenario(b *testing.B) {
	results, names := corpusResults(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(experiments.Fig15CostRatioByScenario(results, names)) != 4 {
			b.Fatal("fig15 wrong")
		}
	}
}

func BenchmarkFig16CostRatioBySize(b *testing.B) {
	results, names := corpusResults(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(experiments.Fig16CostRatioBySize(results, names)) == 0 {
			b.Fatal("fig16 wrong")
		}
	}
}

func BenchmarkFig17PerfProfileByCluster(b *testing.B) {
	results, names := corpusResults(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(experiments.Fig17PerfProfileByCluster(results, names)) != 2 {
			b.Fatal("fig17 wrong")
		}
	}
}

// ---- Figure 7 (exact comparison) ------------------------------------------

func BenchmarkFig7ExactComparison(b *testing.B) {
	algos := experiments.LSAlgorithms()
	var optFrac string
	for i := 0; i < b.N; i++ {
		t, err := experiments.Fig7ExactComparison(context.Background(), 7, algos, 5_000_000)
		if err != nil {
			b.Fatal(err)
		}
		if len(t.Rows) == 0 {
			b.Fatal("fig7 empty")
		}
		optFrac = t.Rows[len(t.Rows)-1][4]
	}
	_ = optFrac
}

// ---- Table 2 (local search ablation) ---------------------------------------

func BenchmarkTable2LocalSearchAblation(b *testing.B) {
	specs := []experiments.Spec{
		{Family: wfgen.Atacseq, N: 60, Cluster: experiments.Small, Scenario: power.S1, DeadlineFactor: 2, Seed: 42},
		{Family: wfgen.Atacseq, N: 60, Cluster: experiments.Small, Scenario: power.S3, DeadlineFactor: 3, Seed: 42},
		{Family: wfgen.Bacass, N: 57, Cluster: experiments.Small, Scenario: power.S1, DeadlineFactor: 2, Seed: 42},
		{Family: wfgen.Bacass, N: 57, Cluster: experiments.Large, Scenario: power.S2, DeadlineFactor: 1.5, Seed: 42},
	}
	var avg float64
	for i := 0; i < b.N; i++ {
		results, err := experiments.Run(context.Background(), specs, experiments.Algorithms(), 0, nil)
		if err != nil {
			b.Fatal(err)
		}
		t := experiments.Table2LocalSearchAblation(results)
		if len(t.Rows) != 4 {
			b.Fatal("table2 wrong")
		}
		avg = firstFloat(b, t.Rows[3][3])
	}
	b.ReportMetric(avg, "pressWR_LS_avg_ratio")
}

// ---- ablations and the Section 7 extension ---------------------------------

func ablationBenchSpecs() []experiments.Spec {
	return []experiments.Spec{
		{Family: wfgen.Bacass, N: 50, Cluster: experiments.Small, Scenario: power.S1, DeadlineFactor: 2, Seed: 42},
		{Family: wfgen.Eager, N: 50, Cluster: experiments.Small, Scenario: power.S3, DeadlineFactor: 1.5, Seed: 42},
	}
}

func BenchmarkAblationK(b *testing.B) {
	specs := ablationBenchSpecs()
	for i := 0; i < b.N; i++ {
		t, err := experiments.AblationK(context.Background(), specs, []int{1, 3}, 0)
		if err != nil || len(t.Rows) != 2 {
			b.Fatalf("rows %d err %v", len(t.Rows), err)
		}
	}
}

func BenchmarkAblationMu(b *testing.B) {
	specs := ablationBenchSpecs()
	for i := 0; i < b.N; i++ {
		t, err := experiments.AblationMu(context.Background(), specs, []int64{5, 10}, 0)
		if err != nil || len(t.Rows) != 2 {
			b.Fatalf("rows %d err %v", len(t.Rows), err)
		}
	}
}

func BenchmarkAblationImprovers(b *testing.B) {
	specs := ablationBenchSpecs()
	for i := 0; i < b.N; i++ {
		t, err := experiments.AblationImprovers(context.Background(), specs, 0)
		if err != nil || len(t.Rows) != 4 {
			b.Fatalf("rows %d err %v", len(t.Rows), err)
		}
	}
}

func BenchmarkAblationOrdering(b *testing.B) {
	specs := ablationBenchSpecs()
	for i := 0; i < b.N; i++ {
		t, err := experiments.AblationOrdering(context.Background(), specs, 0)
		if err != nil || len(t.Rows) != 8 {
			b.Fatalf("rows %d err %v", len(t.Rows), err)
		}
	}
}

func BenchmarkAblationGreedies(b *testing.B) {
	specs := ablationBenchSpecs()
	for i := 0; i < b.N; i++ {
		t, err := experiments.AblationGreedies(context.Background(), specs, 0)
		if err != nil || len(t.Rows) != 4 {
			b.Fatalf("rows %d err %v", len(t.Rows), err)
		}
	}
}

func BenchmarkExtensionTwoPass(b *testing.B) {
	specs := ablationBenchSpecs()
	for i := 0; i < b.N; i++ {
		t, err := experiments.ExtensionTwoPass(context.Background(), specs, 0)
		if err != nil || len(t.Rows) != 3 {
			b.Fatalf("rows %d err %v", len(t.Rows), err)
		}
	}
}

// ---- robustness studies ------------------------------------------------------

func BenchmarkRobustnessRuntime(b *testing.B) {
	specs := ablationBenchSpecs()
	for i := 0; i < b.N; i++ {
		t, err := experiments.RobustnessRuntime(context.Background(), specs, []float64{0, 0.2}, 0)
		if err != nil || len(t.Rows) != 2 {
			b.Fatalf("rows %d err %v", len(t.Rows), err)
		}
	}
}

func BenchmarkRobustnessForecast(b *testing.B) {
	specs := ablationBenchSpecs()
	for i := 0; i < b.N; i++ {
		t, err := experiments.RobustnessForecast(context.Background(), specs, []float64{0, 0.25}, 0)
		if err != nil || len(t.Rows) != 2 {
			b.Fatalf("rows %d err %v", len(t.Rows), err)
		}
	}
}

func BenchmarkSimulatorReplay(b *testing.B) {
	inst, prof := benchInstance(b, 500)
	plan := cawosched.ASAP(inst)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := sim.Replay(inst, plan, prof)
		if err != nil || res.Shifted != 0 {
			b.Fatalf("replay err %v shifted %d", err, res.Shifted)
		}
	}
}

// ---- theory: Theorem 4.1 and 4.3 --------------------------------------------

func BenchmarkUniprocessorDP(b *testing.B) {
	r := rng.New(5)
	durs := make([]int64, 25)
	var total int64
	for i := range durs {
		durs[i] = r.IntRange(1, 9)
		total += durs[i]
	}
	prof, err := power.Generate(power.S1, total*2, 24, 0, 30, r)
	if err != nil {
		b.Fatal(err)
	}
	p := &dp.Problem{Dur: durs, Idle: 2, Work: 6, Prof: prof}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := dp.Solve(p); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkNPCReduction(b *testing.B) {
	p := &npc.ThreePartition{X: []int64{6, 6, 8, 6, 7, 7}, B: 20}
	for i := 0; i < b.N; i++ {
		red, err := npc.Build(p)
		if err != nil {
			b.Fatal(err)
		}
		_, cost, err := exact.Solve(context.Background(), red.Instance, red.Profile, exact.Options{})
		if err != nil || cost != 0 {
			b.Fatalf("cost %d err %v", cost, err)
		}
	}
}

// ---- core kernels ------------------------------------------------------------

func benchInstance(b *testing.B, n int) (*cawosched.Instance, *cawosched.Profile) {
	b.Helper()
	wf, err := cawosched.GenerateWorkflow(cawosched.Atacseq, n, 42)
	if err != nil {
		b.Fatal(err)
	}
	inst, err := cawosched.PlanHEFT(wf, cawosched.SmallCluster(42))
	if err != nil {
		b.Fatal(err)
	}
	D := cawosched.ASAPMakespan(inst)
	prof, err := cawosched.ProfileForInstance(inst, cawosched.S1, 2*D, 24, 42)
	if err != nil {
		b.Fatal(err)
	}
	return inst, prof
}

func BenchmarkASAP500(b *testing.B) {
	inst, _ := benchInstance(b, 500)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cawosched.ASAP(inst)
	}
}

func BenchmarkGreedySlack500(b *testing.B) {
	inst, prof := benchInstance(b, 500)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := cawosched.Run(inst, prof, cawosched.Options{Score: cawosched.ScoreSlack}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGreedyPressWR500(b *testing.B) {
	inst, prof := benchInstance(b, 500)
	opt := cawosched.Options{Score: cawosched.ScorePressureW, Refined: true}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := cawosched.Run(inst, prof, opt); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPressWRLS500(b *testing.B) {
	inst, prof := benchInstance(b, 500)
	opt := cawosched.Options{Score: cawosched.ScorePressureW, Refined: true, LocalSearch: true}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := cawosched.Run(inst, prof, opt); err != nil {
			b.Fatal(err)
		}
	}
}

// localSearchInput builds the greedy schedule the hill climber starts
// from, at the paper's default µ = 10.
func localSearchInput(b *testing.B, n int) (*cawosched.Instance, *cawosched.Profile, *cawosched.Schedule) {
	b.Helper()
	inst, prof := benchInstance(b, n)
	s, _, err := cawosched.Run(inst, prof, cawosched.Options{Score: cawosched.ScorePressureW, Refined: true})
	if err != nil {
		b.Fatal(err)
	}
	return inst, prof, s
}

// BenchmarkLocalSearch measures the interval-jumping hill climber
// (schedule.FirstImprovingMove); BenchmarkLocalSearchUnitStep is the
// original O(µ) scan it replaced. Both accept identical moves, so the
// ns/op ratio is the pure candidate-enumeration speedup.
func BenchmarkLocalSearch(b *testing.B) {
	inst, prof, s := localSearchInput(b, 500)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.LocalSearch(context.Background(), inst, prof, s.Clone(), core.DefaultMu, nil)
	}
}

func BenchmarkLocalSearchUnitStep(b *testing.B) {
	inst, prof, s := localSearchInput(b, 500)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.LocalSearchUnitStep(context.Background(), inst, prof, s.Clone(), core.DefaultMu, nil)
	}
}

func BenchmarkCarbonCost500(b *testing.B) {
	inst, prof := benchInstance(b, 500)
	s := cawosched.ASAP(inst)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cawosched.CarbonCost(inst, s, prof)
	}
}

// ---- zone layer --------------------------------------------------------------

// benchZonedInstance builds a 500-task instance on a 3-zone small cluster
// with one rotated-scenario profile per zone.
func benchZonedInstance(b *testing.B, n, zones int) (*cawosched.Instance, *cawosched.ZoneSet) {
	b.Helper()
	wf, err := cawosched.GenerateWorkflow(cawosched.Atacseq, n, 42)
	if err != nil {
		b.Fatal(err)
	}
	inst, err := cawosched.PlanHEFT(wf, cawosched.SmallZonedCluster(42, zones))
	if err != nil {
		b.Fatal(err)
	}
	D := cawosched.ASAPMakespan(inst)
	zs, err := cawosched.ZonesForInstance(inst,
		[]cawosched.Scenario{cawosched.S1, cawosched.S2, cawosched.S3, cawosched.S4}, 2*D, 24, 42)
	if err != nil {
		b.Fatal(err)
	}
	return inst, zs
}

// BenchmarkCarbonCostZones measures the per-zone cost sweep (3 zones);
// compare against BenchmarkCarbonCost500, the single-zone sweep over the
// same workflow size.
func BenchmarkCarbonCostZones(b *testing.B) {
	inst, zs := benchZonedInstance(b, 500, 3)
	s := cawosched.ASAP(inst)
	if got, want := cawosched.CarbonCostZones(inst, s, zs), int64(0); got < want {
		b.Fatalf("cost %d", got)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cawosched.CarbonCostZones(inst, s, zs)
	}
}

// BenchmarkPressWRLSZones runs the paper's best variant end to end on the
// 3-zone instance (the zone-aware counterpart of BenchmarkPressWRLS500).
func BenchmarkPressWRLSZones(b *testing.B) {
	inst, zs := benchZonedInstance(b, 500, 3)
	opt := cawosched.Options{Score: cawosched.ScorePressureW, Refined: true, LocalSearch: true}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := cawosched.RunZonesContext(context.Background(), inst, zs, opt); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPressWRLSZonesTraced is BenchmarkPressWRLSZones with a full
// observability context (metrics registry + tracer): the delta between the
// two is the cost of tracing and metering a solve. Without the context the
// instrumentation is a handful of nil checks, so the untraced benchmark
// must stay within noise of its pre-observability baseline.
func BenchmarkPressWRLSZonesTraced(b *testing.B) {
	inst, zs := benchZonedInstance(b, 500, 3)
	opt := cawosched.Options{Score: cawosched.ScorePressureW, Refined: true, LocalSearch: true}
	reg := obs.NewRegistry()
	tracer := obs.NewTracer(obs.DefaultTraceBuffer)
	ctx := obs.WithTracer(obs.WithMeter(context.Background(), reg), tracer)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := cawosched.RunZonesContext(ctx, inst, zs, opt); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMapAndSolve measures the two-pass mapping search on the
// 3-zone instance with K = 3 candidate policies (fixed EFT plus both
// zone-aware policies): K mapping passes, K instance builds, K zone-aware
// schedules. Compare against BenchmarkPressWRLSZones, the fixed-mapping
// second pass alone on the same workload.
func BenchmarkMapAndSolve(b *testing.B) {
	wf, err := cawosched.GenerateWorkflow(cawosched.Atacseq, 500, 42)
	if err != nil {
		b.Fatal(err)
	}
	cluster := cawosched.SmallZonedCluster(42, 3)
	inst, err := cawosched.PlanHEFT(wf, cluster)
	if err != nil {
		b.Fatal(err)
	}
	D := cawosched.ASAPMakespan(inst)
	zs, err := cawosched.ZonesForInstance(inst,
		[]cawosched.Scenario{cawosched.S1, cawosched.S2, cawosched.S3, cawosched.S4}, 2*D, 24, 42)
	if err != nil {
		b.Fatal(err)
	}
	opt := cawosched.MapSolveOptions{
		Policies: []cawosched.MappingPolicy{cawosched.MapEFT, cawosched.MapZoneGreen, cawosched.MapZoneEnergyPerWork},
		Sched:    cawosched.Options{Score: cawosched.ScorePressureW, Refined: true, LocalSearch: true},
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cawosched.MapAndSolve(context.Background(), wf, cluster, zs, opt); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSolveCacheHit measures a fully warmed Solve: plan cache + solve
// response cache hit, i.e. the steady-state request latency of schedd on a
// repeated workload.
func BenchmarkSolveCacheHit(b *testing.B) {
	wf, err := cawosched.GenerateWorkflow(cawosched.Methylseq, 200, 42)
	if err != nil {
		b.Fatal(err)
	}
	solver := cawosched.NewSolver(cawosched.SmallCluster(42))
	req := cawosched.Request{Workflow: wf, Variant: "pressWR-LS", Seed: 42}
	warm, err := solver.Solve(context.Background(), req)
	if err != nil {
		b.Fatal(err)
	}
	if warm.CacheHit {
		b.Fatal("first solve hit the cache")
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := solver.Solve(context.Background(), req)
		if err != nil {
			b.Fatal(err)
		}
		if !res.CacheHit {
			b.Fatal("cache miss on a warmed request")
		}
	}
}

// benchContendedCache measures warmed cache hits under concurrent clients
// spread over several hot keys — the scale-out serving workload. The hot
// keys land on different shards, so the sharded configuration serves them
// with independent locks while the single-shard configuration funnels all
// clients through one mutex.
func benchContendedCache(b *testing.B, opts ...cawosched.SolverOption) {
	b.Helper()
	const hotKeys = 8
	wf, err := cawosched.GenerateWorkflow(cawosched.Methylseq, 60, 42)
	if err != nil {
		b.Fatal(err)
	}
	solver := cawosched.NewSolver(cawosched.SmallCluster(42), opts...)
	reqs := make([]cawosched.Request, hotKeys)
	for k := range reqs {
		reqs[k] = cawosched.Request{Workflow: wf, Variant: "pressWR-LS", Seed: uint64(k + 1)}
		if _, err := solver.Solve(context.Background(), reqs[k]); err != nil {
			b.Fatal(err)
		}
	}
	b.SetParallelism(4) // 4×GOMAXPROCS client goroutines
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		k := 0
		for pb.Next() {
			res, err := solver.Solve(context.Background(), reqs[k%hotKeys])
			if err != nil {
				b.Fatal(err)
			}
			if !res.CacheHit {
				b.Fatal("cache miss on a warmed request")
			}
			k++
		}
	})
	b.StopTimer()
	st := solver.Stats()
	b.ReportMetric(float64(st.SolveContention)/float64(b.N), "contended/op")
}

// BenchmarkSolveCacheContended is the sharded configuration (the schedd
// default: GOMAXPROCS-sized power-of-two shard count).
func BenchmarkSolveCacheContended(b *testing.B) {
	benchContendedCache(b, cawosched.WithCacheShards(16))
}

// BenchmarkSolveCacheContendedSingleShard funnels the identical workload
// through one global cache mutex — the pre-sharding behavior, kept as the
// contention baseline.
func BenchmarkSolveCacheContendedSingleShard(b *testing.B) {
	benchContendedCache(b, cawosched.WithCacheShards(1))
}

// ---- online scheduling (tenancy) ---------------------------------------

// benchManager assembles a 2-zone tenancy manager over a simulated clock,
// mirroring the schedd online configuration.
func benchManager(b *testing.B) (*tenancy.Manager, *tenancy.SimClock) {
	b.Helper()
	cluster := cawosched.SmallZonedCluster(42, 2)
	specs := make([]power.ZoneSpec, cluster.NumZones())
	for z := range specs {
		gmin, gmax := power.PlatformBounds(cluster.ZoneComputeIdle(z), cluster.ZoneComputeWork(z))
		specs[z] = power.ZoneSpec{
			Name: "z" + strconv.Itoa(z), Scenario: power.Scenarios()[z], Gmin: gmin, Gmax: gmax,
		}
	}
	zs, err := power.GenerateZones(specs, 480, 24, 42)
	if err != nil {
		b.Fatal(err)
	}
	clock := tenancy.NewSimClock(0)
	m, err := tenancy.NewManager(tenancy.Config{
		Solver: cawosched.NewSolver(cluster),
		Supply: zs,
		Clock:  clock,
	})
	if err != nil {
		b.Fatal(err)
	}
	return m, clock
}

// BenchmarkAdmitWorkflow measures admission latency under a live ledger:
// each iteration advances the clock one deadline window and admits a fresh
// submission of the memoized workflow shape, so every pass solves against
// a changed residual view and commits real reservations.
func BenchmarkAdmitWorkflow(b *testing.B) {
	m, clock := benchManager(b)
	wf, err := cawosched.GenerateWorkflow(cawosched.Bacass, 100, 42)
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	// Warm the plan memo so iterations measure admission, not HEFT.
	st, err := m.Submit(ctx, tenancy.SubmitRequest{Workflow: wf, DeadlineFactor: 3})
	if err != nil {
		b.Fatal(err)
	}
	window := st.Deadline - st.SubmittedAt
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		clock.Set(int64(i+1) * window)
		if _, err := m.Submit(ctx, tenancy.SubmitRequest{Workflow: wf, DeadlineFactor: 3}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRebalanceAdmitted measures one rolling-horizon pass over a
// backlog of admitted-but-unstarted workflows (the steady-state cost of
// schedd's -rebalance-every loop).
func BenchmarkRebalanceAdmitted(b *testing.B) {
	m, clock := benchManager(b)
	ctx := context.Background()
	// A zero-slack foreground tenant depletes the green window, so the
	// slack-rich backlog admitted behind it lands compactly; it is running
	// by measurement time and the backlog is admitted-but-unstarted —
	// exactly what a rolling-horizon pass re-solves.
	fg, err := cawosched.GenerateWorkflow(cawosched.Bacass, 50, 11)
	if err != nil {
		b.Fatal(err)
	}
	if _, err := m.Submit(ctx, tenancy.SubmitRequest{Workflow: fg, DeadlineFactor: 1}); err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		wf, err := cawosched.GenerateWorkflow(cawosched.Bacass, 30, uint64(i+1))
		if err != nil {
			b.Fatal(err)
		}
		if _, err := m.Submit(ctx, tenancy.SubmitRequest{Workflow: wf, DeadlineFactor: 12}); err != nil {
			b.Fatal(err)
		}
	}
	clock.Set(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep, err := m.Rebalance(ctx)
		if err != nil {
			b.Fatal(err)
		}
		if rep.Considered == 0 {
			b.Fatal("rebalance pass considered no workflows")
		}
	}
}
