package cawosched_test

import (
	"context"
	"errors"
	"strings"
	"testing"

	cawosched "repro"
)

// TestMemoryTier pins the reference tier implementation: bounded LRU of
// opaque records with private copies.
func TestMemoryTier(t *testing.T) {
	ctx := context.Background()
	tier := cawosched.NewMemoryTier(2)
	tier.Put(ctx, "a", []byte("1"))
	tier.Put(ctx, "b", []byte("2"))
	if v, ok := tier.Get(ctx, "a"); !ok || string(v) != "1" {
		t.Fatalf("Get(a) = %q, %v", v, ok)
	}
	tier.Put(ctx, "c", []byte("3")) // evicts b (a was just touched)
	if _, ok := tier.Get(ctx, "b"); ok {
		t.Error("b survived eviction beyond the bound")
	}
	if _, ok := tier.Get(ctx, "a"); !ok {
		t.Error("recently used a was evicted")
	}
	if tier.Len() != 2 {
		t.Errorf("Len = %d, want 2", tier.Len())
	}
	// Stored values are copies: mutating the caller's buffer is invisible.
	buf := []byte("x")
	tier.Put(ctx, "a", buf)
	buf[0] = 'y'
	if v, _ := tier.Get(ctx, "a"); string(v) != "x" {
		t.Errorf("tier shares the caller's buffer: %q", v)
	}
	st := tier.Stats()
	if st.Hits == 0 || st.Gets < st.Hits || st.Puts != 4 || st.Entries != 2 {
		t.Errorf("stats = %+v", st)
	}
}

// TestParseCacheTier pins the `schedd -cache-tier` spec grammar across
// every form: none/memory/memory:N/peers:..., with each malformed spec
// yielding a named error.
func TestParseCacheTier(t *testing.T) {
	cases := []struct {
		spec    string
		want    string // "" → nil tier, "memory"/"peers" → concrete type
		wantErr string // substring of the expected error ("" → no error)
	}{
		{spec: "", want: ""},
		{spec: "none", want: ""},
		{spec: "memory", want: "memory"},
		{spec: "memory:128", want: "memory"},
		{spec: "memory:0", wantErr: "positive count"},
		{spec: "memory:-1", wantErr: "positive count"},
		{spec: "memory:x", wantErr: "positive count"},
		{spec: "redis://x", wantErr: "unknown cache tier"},
		{spec: "peers:a,b", want: "peers"},
		{spec: "peers:h1:8080,h2:8080:mem=256", want: "peers"},
		{spec: "peers:", wantErr: "empty peer host list"},
		{spec: "peers:,,", wantErr: "empty peer host list"},
		{spec: "peers::mem=64", wantErr: "empty peer host list"},
		{spec: "peers:a,b,a", wantErr: `duplicate peer host "a"`},
		{spec: "peers:a,b:mem=0", wantErr: "bad mem= suffix"},
		{spec: "peers:a,b:mem=-5", wantErr: "bad mem= suffix"},
		{spec: "peers:a,b:mem=lots", wantErr: "bad mem= suffix"},
	}
	for _, tc := range cases {
		tier, err := cawosched.ParseCacheTier(tc.spec)
		if tc.wantErr != "" {
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Errorf("ParseCacheTier(%q) err = %v, want it to name %q", tc.spec, err, tc.wantErr)
			}
			continue
		}
		if err != nil {
			t.Errorf("ParseCacheTier(%q) failed: %v", tc.spec, err)
			continue
		}
		switch tc.want {
		case "":
			if tier != nil {
				t.Errorf("ParseCacheTier(%q) = %T, want nil", tc.spec, tier)
			}
		case "memory":
			if _, ok := tier.(*cawosched.MemoryTier); !ok {
				t.Errorf("ParseCacheTier(%q) = %T, want *MemoryTier", tc.spec, tier)
			}
		case "peers":
			pt, ok := tier.(*cawosched.PeerTier)
			if !ok {
				t.Errorf("ParseCacheTier(%q) = %T, want *PeerTier", tc.spec, tier)
				continue
			}
			if got := len(pt.Peers()); got != 2 {
				t.Errorf("ParseCacheTier(%q) ring has %d peers, want 2", tc.spec, got)
			}
		}
	}
}

// TestSolverCacheTier is the fleet seam's acceptance property: two solvers
// sharing one tier share warm solves — the second solver's first solve of
// a key the first already solved is a tier hit with the identical
// schedule, no scheduler run of its own.
func TestSolverCacheTier(t *testing.T) {
	wf, err := cawosched.GenerateWorkflow(cawosched.Methylseq, 60, 17)
	if err != nil {
		t.Fatal(err)
	}
	tier := cawosched.NewMemoryTier(0)
	req := cawosched.Request{Workflow: wf, Variant: "pressWR-LS", Scenario: cawosched.S2, Seed: 17}

	a := cawosched.NewSolver(cawosched.SmallCluster(17), cawosched.WithCacheTier(tier))
	first, err := a.Solve(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if first.CacheHit {
		t.Error("cold solve reported a hit")
	}
	if tier.Len() != 1 {
		t.Fatalf("tier holds %d records after one solve, want 1", tier.Len())
	}

	// A second solver (another schedd instance) sharing the tier.
	b := cawosched.NewSolver(cawosched.SmallCluster(17), cawosched.WithCacheTier(tier))
	warm, err := b.Solve(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if !warm.CacheHit {
		t.Error("shared-tier solve missed")
	}
	if st := b.Stats(); st.TierHits != 1 || st.SolveMisses != 1 || st.SolveHits != 0 {
		t.Errorf("stats = %+v, want 1 tier hit on the 1 miss", st)
	}
	if warm.Cost != first.Cost || warm.ASAPCost != first.ASAPCost || warm.Deadline != first.Deadline || warm.Mapping != first.Mapping {
		t.Errorf("tier response differs: cost %d/%d mapping %s/%s", first.Cost, warm.Cost, first.Mapping, warm.Mapping)
	}
	for v := range first.Schedule.Start {
		if warm.Schedule.Start[v] != first.Schedule.Start[v] {
			t.Fatalf("tier schedule moved node %d", v)
		}
	}

	// The tier hit also populated b's in-process cache: the next request
	// is a plain cache hit, not another tier consult.
	again, err := b.Solve(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if !again.CacheHit {
		t.Error("post-tier request missed the in-process cache")
	}
	if st := b.Stats(); st.TierHits != 1 || st.SolveHits != 1 {
		t.Errorf("stats = %+v, want the second hit served in-process", st)
	}
}

// TestSolverCacheTierMapSearch round-trips a map-search response through
// the tier: the stored record names the winning policy, and the receiving
// solver rebuilds the winner's instance from its own plan memo.
func TestSolverCacheTierMapSearch(t *testing.T) {
	wf, err := cawosched.GenerateWorkflow(cawosched.Eager, 50, 23)
	if err != nil {
		t.Fatal(err)
	}
	tier := cawosched.NewMemoryTier(0)
	req := cawosched.Request{Workflow: wf, Variant: "press", Scenario: cawosched.S3, Seed: 23, MapSearch: true}

	a := cawosched.NewSolver(cawosched.SmallCluster(23), cawosched.WithCacheTier(tier))
	first, err := a.Solve(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	b := cawosched.NewSolver(cawosched.SmallCluster(23), cawosched.WithCacheTier(tier))
	warm, err := b.Solve(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if !warm.CacheHit || warm.Mapping != first.Mapping || warm.Cost != first.Cost {
		t.Errorf("tier map-search round trip: hit=%v mapping %s/%s cost %d/%d",
			warm.CacheHit, first.Mapping, warm.Mapping, first.Cost, warm.Cost)
	}
	for v := range first.Schedule.Start {
		if warm.Schedule.Start[v] != first.Schedule.Start[v] {
			t.Fatalf("tier map-search schedule moved node %d", v)
		}
	}
}

// TestSolverCacheTierGarbage: corrupt or mismatched tier records are
// treated as misses, never served.
func TestSolverCacheTierGarbage(t *testing.T) {
	wf, err := cawosched.GenerateWorkflow(cawosched.Bacass, 40, 29)
	if err != nil {
		t.Fatal(err)
	}
	tier := cawosched.NewMemoryTier(0)
	a := cawosched.NewSolver(cawosched.SmallCluster(29), cawosched.WithCacheTier(tier))
	req := cawosched.Request{Workflow: wf, Variant: "press", Scenario: cawosched.S1, Seed: 29}
	if _, err := a.Solve(context.Background(), req); err != nil {
		t.Fatal(err)
	}
	if tier.Len() != 1 {
		t.Fatalf("tier holds %d records, want 1", tier.Len())
	}
	// Overwrite every record with garbage; a fresh solver must fall back
	// to a real solve without error.
	for _, key := range tier.Keys() {
		tier.Put(context.Background(), key, []byte("{not json"))
	}
	b := cawosched.NewSolver(cawosched.SmallCluster(29), cawosched.WithCacheTier(tier))
	res, err := b.Solve(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if res.CacheHit {
		t.Error("garbage record served as a hit")
	}
	if st := b.Stats(); st.TierHits != 0 {
		t.Errorf("stats = %+v, want 0 tier hits", st)
	}

	// Errors are never written to the tier.
	inst, err := cawosched.PlanHEFT(wf, cawosched.SmallCluster(29))
	if err != nil {
		t.Fatal(err)
	}
	D := cawosched.ASAPMakespan(inst)
	empty := cawosched.NewMemoryTier(0)
	c := cawosched.NewSolver(cawosched.SmallCluster(29), cawosched.WithCacheTier(empty))
	bad := cawosched.Request{Workflow: wf, Variant: "press", Profile: cawosched.ConstantProfile(D/2, 1)}
	if _, err := c.Solve(context.Background(), bad); !errors.Is(err, cawosched.ErrInfeasibleDeadline) {
		t.Fatalf("err = %v, want ErrInfeasibleDeadline", err)
	}
	if empty.Len() != 0 {
		t.Errorf("failed solve left %d tier records", empty.Len())
	}
}
