package cawosched_test

import (
	"testing"

	cawosched "repro"
)

// buildPipeline exercises the whole public path: generate → map → profile.
func buildPipeline(t testing.TB, fam cawosched.Family, n int, seed uint64, factor int64) (*cawosched.Instance, *cawosched.Profile) {
	t.Helper()
	wf, err := cawosched.GenerateWorkflow(fam, n, seed)
	if err != nil {
		t.Fatal(err)
	}
	cluster := cawosched.SmallCluster(seed)
	inst, err := cawosched.PlanHEFT(wf, cluster)
	if err != nil {
		t.Fatal(err)
	}
	D := cawosched.ASAPMakespan(inst)
	prof, err := cawosched.ProfileForInstance(inst, cawosched.S1, factor*D, 24, seed)
	if err != nil {
		t.Fatal(err)
	}
	return inst, prof
}

func TestQuickstartPath(t *testing.T) {
	inst, prof := buildPipeline(t, cawosched.Methylseq, 120, 42, 2)
	sched, stats, err := cawosched.Run(inst, prof, cawosched.Options{
		Score:       cawosched.ScorePressure,
		Refined:     true,
		LocalSearch: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := cawosched.Validate(inst, sched, prof.T()); err != nil {
		t.Fatal(err)
	}
	if got := cawosched.CarbonCost(inst, sched, prof); got != stats.Cost {
		t.Errorf("CarbonCost %d != Stats.Cost %d", got, stats.Cost)
	}
	asapCost := cawosched.CarbonCost(inst, cawosched.ASAP(inst), prof)
	if stats.Cost > asapCost {
		t.Errorf("pressWR-LS cost %d worse than ASAP %d", stats.Cost, asapCost)
	}
}

func TestAllVariantNamesExposed(t *testing.T) {
	if len(cawosched.AllVariants()) != 16 {
		t.Errorf("AllVariants = %d, want 16", len(cawosched.AllVariants()))
	}
	if cawosched.Variants(true)[7].Name() != "pressWR-LS" {
		t.Errorf("unexpected variant name %q", cawosched.Variants(true)[7].Name())
	}
}

func TestManualWorkflowAndMapping(t *testing.T) {
	wf := cawosched.NewWorkflow(3)
	wf.SetWeight(0, 8)
	wf.SetWeight(1, 8)
	wf.SetWeight(2, 8)
	wf.AddEdge(0, 1, 2)
	wf.AddEdge(0, 2, 2)
	cluster := cawosched.NewCluster([]cawosched.ProcType{
		{Name: "A", Speed: 2, Idle: 1, Work: 4},
		{Name: "B", Speed: 4, Idle: 2, Work: 8},
	}, []int{1, 1}, 7)
	inst, err := cawosched.BuildInstance(wf, &cawosched.Mapping{
		Proc:   []int{0, 0, 1},
		Order:  [][]int{{0, 1}, {2}},
		Finish: []int64{4, 8, 10},
	}, cluster)
	if err != nil {
		t.Fatal(err)
	}
	if inst.NumReal != 3 || inst.N() != 4 { // one comm task for edge 0→2
		t.Fatalf("instance N=%d NumReal=%d", inst.N(), inst.NumReal)
	}
	prof := cawosched.ConstantProfile(60, 3)
	sched, _, err := cawosched.Run(inst, prof, cawosched.Options{Score: cawosched.ScoreSlack})
	if err != nil {
		t.Fatal(err)
	}
	if err := cawosched.Validate(inst, sched, 60); err != nil {
		t.Error(err)
	}
}

func TestOptimalUniprocessorExposed(t *testing.T) {
	prof := cawosched.ConstantProfile(20, 0)
	starts, cost, err := cawosched.OptimalUniprocessor([]int64{3, 4}, 1, 2, prof)
	if err != nil {
		t.Fatal(err)
	}
	if len(starts) != 2 {
		t.Fatalf("starts = %v", starts)
	}
	// Budget 0: everything is brown. Idle 1×20 plus work 2×7 = 34.
	if cost != 34 {
		t.Errorf("cost = %d, want 34", cost)
	}
}

func TestOptimalScheduleExposed(t *testing.T) {
	inst, prof := buildPipeline(t, cawosched.Bacass, 7, 3, 2)
	opt, optCost, err := cawosched.OptimalSchedule(inst, prof, 5_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if err := cawosched.Validate(inst, opt, prof.T()); err != nil {
		t.Fatal(err)
	}
	for _, o := range cawosched.AllVariants() {
		s, _, err := cawosched.Run(inst, prof, o)
		if err != nil {
			t.Fatal(err)
		}
		if c := cawosched.CarbonCost(inst, s, prof); c < optCost {
			t.Errorf("%s cost %d beats optimum %d", o.Name(), c, optCost)
		}
	}
}
