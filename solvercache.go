package cawosched

import (
	"container/list"
	"errors"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/dag"
	"repro/internal/greenheft"
)

// This file is the solver's caching/concurrency layer: the sharded plan
// memo, the sharded solve-response LRU, and the singleflight table that
// coalesces concurrent identical solves. solver.go owns the scheduling
// pipeline; everything about how its results are stored, shared, and
// found again lives here.
//
// Both caches are split into a power-of-two number of shards, each with
// its own mutex (and, for the response cache, its own LRU list). A key's
// shard is picked by its 64-bit FNV digest, so the mapping is stable for
// the life of the process. Sharding is pure mechanism: responses,
// hit/miss counters, and entry accounting are identical at every shard
// count (Stats sums the shards); the only observable difference is which
// entry a full cache evicts first, because recency is tracked per shard.
// Shard count 1 reproduces the pre-sharding global LRU exactly. When an
// entry limit is smaller than the shard count, keys are routed over only
// the first effectiveShards(shards, limit) shards, so a tiny cache still
// admits every key instead of silently dropping the ones that hash to a
// zero-capacity shard.

// defaultCacheShards picks the shard count for a new solver: the next
// power of two at or above GOMAXPROCS, clamped to [1, 64]. One shard per
// CPU is enough to make lock collisions rare; beyond 64 the maps are so
// small that sharding further only wastes memory.
func defaultCacheShards() int {
	return normalizeShards(runtime.GOMAXPROCS(0))
}

// normalizeShards rounds n up to a power of two in [1, 64].
func normalizeShards(n int) int {
	if n < 1 {
		n = 1
	}
	if n > 64 {
		n = 64
	}
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// effectiveShards returns how many of a cache's shards actually receive
// keys under an entry limit: the largest power of two that is at most
// min(shards, limit), so every active shard holds at least one entry.
// Without the clamp a limit below the shard count would leave some
// shards with capacity 0 — and because the key→shard mapping is fixed,
// every key hashing there would silently never be cached (found as a
// pre-clamp bug: -solve-cache-limit 4 on a 16-shard solver dropped 3 of
// 4 puts). limit <= 0 (caching disabled) keeps the full shard array; the
// caps are all zero anyway.
func effectiveShards(shards, limit int) int {
	if limit <= 0 || limit >= shards {
		return shards
	}
	p := 1
	for p*2 <= limit {
		p *= 2
	}
	return p
}

// SolverOption configures a Solver at construction (NewSolver).
type SolverOption func(*solverConfig)

type solverConfig struct {
	shards   int
	solveCap int
	planCap  int
	coalesce bool
	tier     CacheTier
}

// WithCacheShards sets the shard count of the plan memo and the
// solve-response cache. n is rounded up to a power of two and clamped to
// [1, 64]; n <= 0 selects the default (next power of two >= GOMAXPROCS).
// Shard count 1 reproduces the single-mutex global-LRU behavior exactly;
// higher counts only change which entry a full cache evicts first, never
// a response or a hit/miss counter.
func WithCacheShards(n int) SolverOption {
	return func(c *solverConfig) {
		if n > 0 {
			c.shards = normalizeShards(n)
		}
	}
}

// WithSolveCacheLimit bounds the solve-response cache at construction
// (see SetSolveCacheLimit). n <= 0 disables response caching.
func WithSolveCacheLimit(n int) SolverOption {
	return func(c *solverConfig) {
		if n < 0 {
			n = 0
		}
		c.solveCap = n
	}
}

// WithPlanCacheLimit bounds the plan memo at construction (see
// SetPlanCacheLimit). n <= 0 disables plan memoization.
func WithPlanCacheLimit(n int) SolverOption {
	return func(c *solverConfig) {
		if n < 0 {
			n = 0
		}
		c.planCap = n
	}
}

// WithCoalescing enables or disables singleflight coalescing of
// concurrent identical solves (enabled by default). Coalescing is pure
// mechanism — every request receives the identical response either way —
// so the switch exists for measurement and bisection, not correctness.
func WithCoalescing(on bool) SolverOption {
	return func(c *solverConfig) { c.coalesce = on }
}

// WithCacheTier installs an external cache tier consulted between the
// in-process response cache and a full solve (see CacheTier).
func WithCacheTier(t CacheTier) SolverOption {
	return func(c *solverConfig) { c.tier = t }
}

// ---- key digests --------------------------------------------------------

// b2u maps a bool to one digest word.
func b2u(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

// sum returns the 64-bit FNV-1a digest of the whole solve key — every
// field that makes two solves interchangeable. It picks the key's cache
// shard and, rendered as hex, keys the external cache tier, so a fleet of
// schedd processes with identical builds computes identical tier keys.
func (k solveKey) sum() uint64 {
	h := dag.NewHash()
	h.U64(k.fp)
	h.U64(k.digest)
	h.I64(k.deadline)
	h.U64(uint64(k.opt.Score))
	h.U64(b2u(k.opt.Refined))
	h.U64(b2u(k.opt.LocalSearch))
	h.U64(uint64(k.opt.K))
	h.I64(k.opt.Mu)
	h.U64(b2u(k.marginal))
	h.U64(uint64(k.policy))
	h.U64(b2u(k.mapSearch))
	return h.Sum64()
}

// sum returns the shard-picking digest of a plan key.
func (k planKey) sum() uint64 {
	h := dag.NewHash()
	h.U64(k.fp)
	h.U64(uint64(k.policy))
	h.U64(k.zd)
	return h.Sum64()
}

// lockContended acquires mu, counting into contended when the lock was
// already held — the solver's cheap measure of real shard contention
// (a TryLock that fails is exactly a request that would have queued on
// the old global mutex).
func lockContended(mu *sync.Mutex, contended *atomic.Int64) {
	if mu.TryLock() {
		return
	}
	contended.Add(1)
	mu.Lock()
}

// ---- plan memo shards ---------------------------------------------------

// planShard is one shard of the plan memo: its own mutex, map, and share
// of the total capacity. When full, an arbitrary entry is evicted on
// insert — a simple bound that keeps a long-lived service from growing
// without limit while never evicting the entries a steady workload reuses
// fastest (those are re-admitted on the next miss).
type planShard struct {
	mu      sync.Mutex
	entries map[planKey]*planEntry
	cap     int
}

func (s *Solver) planShardFor(key planKey) *planShard {
	return &s.planShards[key.sum()&uint64(s.planEff.Load()-1)]
}

// planLookup returns the memoized entry for the key, inserting a fresh
// one on miss. hit is false for the inserting caller (which then builds
// the entry; concurrent lookups of the same key block on its sync.Once).
// With plan caching disabled the fresh entry is returned unmemoized.
func (s *Solver) planLookup(key planKey, wf *DAG, pol greenheft.Policy, zones *ZoneSet) (e *planEntry, hit bool) {
	shard := s.planShardFor(key)
	lockContended(&shard.mu, &s.planContention)
	defer shard.mu.Unlock()
	e, hit = shard.entries[key]
	if hit {
		return e, true
	}
	e = &planEntry{wf: wf, policy: pol, zones: zones}
	if shard.cap > 0 {
		if len(shard.entries) >= shard.cap {
			for k := range shard.entries {
				delete(shard.entries, k)
				break
			}
		}
		shard.entries[key] = e
	}
	return e, false
}

// SetPlanCacheLimit bounds the plan memo to at most n entries (distributed
// across the shards), evicting arbitrary entries if it currently holds
// more. n <= 0 disables and clears the memo: every plan request builds
// fresh. The default limit is 4096.
func (s *Solver) SetPlanCacheLimit(n int) {
	if n < 0 {
		n = 0
	}
	eff := effectiveShards(len(s.planShards), n)
	s.planCap.Store(int64(n))
	s.planEff.Store(int64(eff))
	for i := range s.planShards {
		shard := &s.planShards[i]
		cap := 0
		if i < eff {
			cap = shardShare(n, i, eff)
		}
		lockContended(&shard.mu, &s.planContention)
		shard.cap = cap
		if cap <= 0 {
			// Inactive (or disabled) shard: drop its entries — with the
			// shrunken mask no lookup will ever reach them again.
			shard.entries = make(map[planKey]*planEntry)
		} else {
			for k := range shard.entries {
				if len(shard.entries) <= cap {
					break
				}
				delete(shard.entries, k)
			}
		}
		shard.mu.Unlock()
	}
}

// ResetPlans drops every memoized plan (e.g. after a batch of one-off
// workflows). Counters and the solve-response cache are unaffected.
func (s *Solver) ResetPlans() {
	for i := range s.planShards {
		shard := &s.planShards[i]
		lockContended(&shard.mu, &s.planContention)
		shard.entries = make(map[planKey]*planEntry)
		shard.mu.Unlock()
	}
}

// planEntries sums the shard sizes for Stats.
func (s *Solver) planEntries() int {
	n := 0
	for i := range s.planShards {
		shard := &s.planShards[i]
		lockContended(&shard.mu, &s.planContention)
		n += len(shard.entries)
		shard.mu.Unlock()
	}
	return n
}

// shardShare splits a total capacity n across k shards: every shard gets
// n/k, and the remainder goes to the lowest-indexed shards, so the shares
// sum to exactly n. Callers pass the *effective* shard count (see
// effectiveShards), which is clamped so that k <= n: every active shard
// has capacity for at least one entry and every key is cacheable.
func shardShare(n, i, k int) int {
	share := n / k
	if i < n%k {
		share++
	}
	return share
}

// ---- solve-response cache shards ----------------------------------------

// solveShard is one shard of the solve-response cache: its own mutex,
// map, LRU list, and share of the total capacity.
type solveShard struct {
	mu        sync.Mutex
	responses map[solveKey]*solveEntry
	lru       *list.List // *solveEntry values; front = most recently used
	cap       int
}

func (s *Solver) solveShardFor(key solveKey) *solveShard {
	return &s.solveShards[key.sum()&uint64(s.solveEff.Load()-1)]
}

func (sh *solveShard) evictOldestLocked() {
	back := sh.lru.Back()
	if back == nil {
		return
	}
	e := back.Value.(*solveEntry)
	sh.lru.Remove(back)
	delete(sh.responses, e.key)
}

// solveCacheGet returns a cached response for the key, guarded against
// fingerprint/digest collisions by structural comparison with the
// request's actual workflow and zone set. The returned response carries a
// fresh Schedule clone, so callers may mutate it without poisoning the
// cache.
func (s *Solver) solveCacheGet(key solveKey, wf *DAG, zones *ZoneSet) (*Response, bool) {
	sh := s.solveShardFor(key)
	lockContended(&sh.mu, &s.solveContention)
	defer sh.mu.Unlock()
	e, ok := sh.responses[key]
	if !ok || !e.wf.Equal(wf) || !e.zones.EqualZoneSet(zones) {
		return nil, false
	}
	sh.lru.MoveToFront(e.elem)
	resp := e.resp
	resp.Schedule = e.resp.Schedule.Clone()
	resp.CacheHit = true
	return &resp, true
}

// solveCachePut stores a successful response under the key, evicting the
// shard's least-recently-used entry when it is full. The cache keeps its
// own Schedule clone so later caller mutations cannot corrupt it.
func (s *Solver) solveCachePut(key solveKey, wf *DAG, zones *ZoneSet, resp *Response) {
	sh := s.solveShardFor(key)
	lockContended(&sh.mu, &s.solveContention)
	defer sh.mu.Unlock()
	if sh.cap <= 0 {
		return
	}
	stored := *resp
	stored.Schedule = resp.Schedule.Clone()
	stored.CacheHit = false
	stored.Coalesced = false
	stored.Timings = nil // stale wall clock must never be served from cache
	if e, ok := sh.responses[key]; ok {
		// Overwrite (e.g. a collision victim re-solved): freshest wins.
		e.wf, e.zones, e.resp = wf, zones.Clone(), stored
		sh.lru.MoveToFront(e.elem)
		return
	}
	for len(sh.responses) >= sh.cap {
		sh.evictOldestLocked()
	}
	e := &solveEntry{key: key, wf: wf, zones: zones.Clone(), resp: stored}
	e.elem = sh.lru.PushFront(e)
	sh.responses[key] = e
}

// SetSolveCacheLimit bounds the solve-response cache to at most n entries
// in total (distributed across the shards), evicting least-recently-used
// responses if it currently holds more. n <= 0 disables and clears the
// cache. The default limit is 4096.
func (s *Solver) SetSolveCacheLimit(n int) {
	if n < 0 {
		n = 0
	}
	eff := effectiveShards(len(s.solveShards), n)
	s.solveCap.Store(int64(n))
	s.solveEff.Store(int64(eff))
	for i := range s.solveShards {
		sh := &s.solveShards[i]
		cap := 0
		if i < eff {
			cap = shardShare(n, i, eff)
		}
		lockContended(&sh.mu, &s.solveContention)
		sh.cap = cap
		for len(sh.responses) > 0 && len(sh.responses) > cap {
			sh.evictOldestLocked()
		}
		sh.mu.Unlock()
	}
}

// ResetSolveCache drops every cached response. Counters are unaffected.
func (s *Solver) ResetSolveCache() {
	for i := range s.solveShards {
		sh := &s.solveShards[i]
		lockContended(&sh.mu, &s.solveContention)
		sh.responses = make(map[solveKey]*solveEntry)
		sh.lru = list.New()
		sh.mu.Unlock()
	}
}

// solveEntriesCount sums the shard sizes for Stats.
func (s *Solver) solveEntriesCount() int {
	n := 0
	for i := range s.solveShards {
		sh := &s.solveShards[i]
		lockContended(&sh.mu, &s.solveContention)
		n += len(sh.responses)
		sh.mu.Unlock()
	}
	return n
}

// ---- singleflight coalescing --------------------------------------------

// errLeaderAborted is published to followers when a coalesced solve's
// leader unwinds (panics) between election and publication; the panic
// itself propagates on the leader's own request.
var errLeaderAborted = errors.New("cawosched: coalesced solve leader aborted")

// flight is one in-flight cacheable solve that concurrent identical
// requests may join: the leader computes, publishes resp/err, and closes
// done; followers block on done (or their own context) and share the
// result. Error results propagate to every follower but are never
// cached. The workflow and zone set guard followers against joining a
// digest-colliding flight, exactly like the cache's structural guards.
type flight struct {
	wf    *DAG
	zones *ZoneSet
	done  chan struct{}
	resp  *Response // stored copy (private Schedule); nil on error
	err   error
}

// joinFlight coalesces the key's solve. Returns:
//   - (f, true): this request is the leader and must finishFlight f.
//   - (f, false): follower — wait on f.done.
//   - (nil, false): no coalescing (disabled, or the in-flight leader's
//     key collides structurally): solve solo.
func (s *Solver) joinFlight(key solveKey, wf *DAG, zones *ZoneSet) (*flight, bool) {
	if !s.coalesce {
		return nil, false
	}
	s.fmu.Lock()
	defer s.fmu.Unlock()
	if f, ok := s.flights[key]; ok {
		if !f.wf.Equal(wf) || !f.zones.EqualZoneSet(zones) {
			return nil, false
		}
		return f, false
	}
	f := &flight{wf: wf, zones: zones, done: make(chan struct{})}
	s.flights[key] = f
	return f, true
}

// finishFlight publishes the leader's outcome and wakes every follower.
// The caller stores the response into the cache (when applicable) before
// calling, so no later request can land in the gap between flight removal
// and cache insertion.
func (s *Solver) finishFlight(key solveKey, f *flight, resp *Response, err error) {
	s.fmu.Lock()
	delete(s.flights, key)
	s.fmu.Unlock()
	f.resp, f.err = resp, err
	close(f.done)
}

// sharedCopy returns the flight-publishable form of a fresh response: a
// private Schedule clone with the per-request fields (timings, hit/
// coalesce flags) zeroed, mirroring what the cache stores.
func sharedCopy(resp *Response) *Response {
	stored := *resp
	stored.Schedule = resp.Schedule.Clone()
	stored.CacheHit = false
	stored.Coalesced = false
	stored.Timings = nil
	return &stored
}
