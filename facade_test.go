package cawosched_test

import (
	"bytes"
	"strings"
	"testing"

	cawosched "repro"
)

// TestFacadeSurface exercises the public wrappers not covered by the
// scenario tests, end to end on one small instance.
func TestFacadeSurface(t *testing.T) {
	wf, err := cawosched.GenerateWorkflow(cawosched.Eager, 40, 2)
	if err != nil {
		t.Fatal(err)
	}

	// DOT round trip through the facade.
	var dot bytes.Buffer
	if err := cawosched.WriteWorkflowDOT(&dot, wf, "x"); err != nil {
		t.Fatal(err)
	}
	back, err := cawosched.ReadWorkflowDOT(&dot)
	if err != nil {
		t.Fatal(err)
	}
	if back.N() != wf.N() {
		t.Errorf("DOT round trip: %d tasks, want %d", back.N(), wf.N())
	}

	// Raw HEFT result and the large cluster.
	cluster := cawosched.LargeCluster(2)
	h, err := cawosched.HEFT(wf, cluster)
	if err != nil {
		t.Fatal(err)
	}
	if h.Makespan <= 0 {
		t.Error("HEFT makespan not positive")
	}

	inst, err := cawosched.PlanHEFT(wf, cluster)
	if err != nil {
		t.Fatal(err)
	}
	D := cawosched.ASAPMakespan(inst)
	prof, err := cawosched.ProfileForInstance(inst, cawosched.S3, 2*D, 12, 2)
	if err != nil {
		t.Fatal(err)
	}

	// ALAP, Makespan.
	alap, err := cawosched.ALAP(inst, prof.T())
	if err != nil {
		t.Fatal(err)
	}
	if cawosched.Makespan(inst, alap) != prof.T() {
		t.Error("ALAP should touch the deadline")
	}

	// Marginal greedy + LS through the facade.
	ms, mstats, err := cawosched.RunMarginal(inst, prof, cawosched.Options{
		Score: cawosched.ScoreSlackW, LocalSearch: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := cawosched.Validate(inst, ms, prof.T()); err != nil {
		t.Error(err)
	}
	if mstats.Cost != cawosched.CarbonCost(inst, ms, prof) {
		t.Error("RunMarginal stats cost mismatch")
	}

	// Annealing through the facade.
	before := cawosched.CarbonCost(inst, ms, prof)
	after := cawosched.Anneal(inst, prof, ms, cawosched.AnnealOptions{Seed: 1, Iterations: 500})
	if after > before {
		t.Errorf("Anneal worsened %d → %d", before, after)
	}

	// Schedule export round trip.
	entries := cawosched.ExportSchedule(inst, ms)
	if len(entries) != inst.N() {
		t.Errorf("ExportSchedule: %d entries", len(entries))
	}
	var js bytes.Buffer
	if err := cawosched.WriteScheduleJSON(&js, inst, ms); err != nil {
		t.Fatal(err)
	}
	got, err := cawosched.ReadScheduleJSON(&js, inst)
	if err != nil {
		t.Fatal(err)
	}
	for v := range got.Start {
		if got.Start[v] != ms.Start[v] {
			t.Fatal("JSON round trip changed the schedule")
		}
	}
	var csv bytes.Buffer
	if err := cawosched.WriteScheduleCSV(&csv, inst, ms); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(csv.String(), "node,name,kind,proc,start,end") {
		t.Error("CSV header missing")
	}
}

func TestFacadeGreenMapping(t *testing.T) {
	wf, err := cawosched.GenerateWorkflow(cawosched.Bacass, 57, 4)
	if err != nil {
		t.Fatal(err)
	}
	cluster := cawosched.SmallCluster(4)
	for _, pol := range []cawosched.MappingPolicy{cawosched.MapEFT, cawosched.MapLowPower, cawosched.MapEnergyPerWork} {
		inst, err := cawosched.PlanGreen(wf, cluster, pol)
		if err != nil {
			t.Fatalf("policy %v: %v", pol, err)
		}
		prof, err := cawosched.ProfileForInstance(inst, cawosched.S1, 2*cawosched.ASAPMakespan(inst), 12, 4)
		if err != nil {
			t.Fatal(err)
		}
		s, _, err := cawosched.Run(inst, prof, cawosched.Options{Score: cawosched.ScorePressure})
		if err != nil {
			t.Fatal(err)
		}
		if err := cawosched.Validate(inst, s, prof.T()); err != nil {
			t.Errorf("policy %v: %v", pol, err)
		}
	}
	// MapEFT must agree with PlanHEFT.
	a, err := cawosched.PlanGreen(wf, cawosched.SmallCluster(4), cawosched.MapEFT)
	if err != nil {
		t.Fatal(err)
	}
	b, err := cawosched.PlanHEFT(wf, cawosched.SmallCluster(4))
	if err != nil {
		t.Fatal(err)
	}
	if a.N() != b.N() {
		t.Error("MapEFT and PlanHEFT disagree on instance size")
	}
	for v := 0; v < a.N(); v++ {
		if a.Proc[v] != b.Proc[v] {
			t.Fatalf("MapEFT and PlanHEFT disagree at node %d", v)
		}
	}
}

func TestFacadeIntensityProfile(t *testing.T) {
	wf, _ := cawosched.GenerateWorkflow(cawosched.Methylseq, 30, 5)
	inst, err := cawosched.PlanHEFT(wf, cawosched.SmallCluster(5))
	if err != nil {
		t.Fatal(err)
	}
	pts, err := cawosched.ReadIntensityCSV(strings.NewReader("0,300\n50,100\n"))
	if err != nil {
		t.Fatal(err)
	}
	prof, err := cawosched.ProfileFromIntensity(inst, pts, 100)
	if err != nil {
		t.Fatal(err)
	}
	if prof.T() != 100 || prof.J() != 2 {
		t.Errorf("profile T=%d J=%d", prof.T(), prof.J())
	}
	// Cleaner half must have the larger budget.
	if prof.BudgetAt(60) <= prof.BudgetAt(10) {
		t.Error("cleaner grid should yield more green budget")
	}
}

func TestFacadeOptionLists(t *testing.T) {
	if len(cawosched.Variants(false)) != 8 {
		t.Error("Variants(false) != 8")
	}
	if _, err := cawosched.GenerateWorkflow(cawosched.Atacseq, 2, 1); err == nil {
		t.Error("n=2 accepted")
	}
}
