package cawosched

// SetTestLeaderGate installs a hook that runs on a coalesced solve's
// leader goroutine right after it wins the flight election and before it
// consults the tier or computes — the lever the coalescing tests use to
// hold a leader in flight while followers pile up. Tests only.
func (s *Solver) SetTestLeaderGate(gate func()) { s.testLeaderGate = gate }
