// Cross-solver integration tests: every algorithm in the repository is
// run on a shared grid of instances and their results are checked against
// each other. These are the end-to-end consistency guarantees:
//
//   - every scheduler produces valid schedules on every instance;
//   - no heuristic ever beats the exact optimum;
//   - the uniprocessor DP equals the exact optimum on chains;
//   - local search and annealing never worsen their input;
//   - the discrete-event replay of any plan reproduces its static cost.
package cawosched_test

import (
	"context"

	"fmt"
	"testing"

	cawosched "repro"
	"repro/internal/core"
	"repro/internal/dp"
	"repro/internal/exact"
	"repro/internal/experiments"
	"repro/internal/power"
	"repro/internal/rng"
	"repro/internal/schedule"
	"repro/internal/sim"
	"repro/internal/wfgen"
)

// integrationGrid is a deliberately diverse set of small instances.
func integrationGrid() []experiments.Spec {
	var specs []experiments.Spec
	for _, fam := range wfgen.Families() {
		for _, sc := range power.Scenarios() {
			specs = append(specs, experiments.Spec{
				Family: fam, N: 30, Cluster: experiments.Small,
				Scenario: sc, DeadlineFactor: 1.5, Seed: 77,
			})
		}
	}
	specs = append(specs,
		experiments.Spec{Family: wfgen.Eager, N: 50, Cluster: experiments.Large, Scenario: power.S1, DeadlineFactor: 1, Seed: 77},
		experiments.Spec{Family: wfgen.Bacass, N: 50, Cluster: experiments.Large, Scenario: power.S2, DeadlineFactor: 3, Seed: 77},
	)
	return specs
}

func TestIntegrationAllSchedulersValid(t *testing.T) {
	for _, spec := range integrationGrid() {
		spec := spec
		t.Run(spec.String(), func(t *testing.T) {
			in, err := experiments.BuildInstance(spec)
			if err != nil {
				t.Fatal(err)
			}
			T := in.Prof.T()
			type namedSched struct {
				name string
				s    *schedule.Schedule
			}
			var all []namedSched

			asap := core.ASAP(in.Inst)
			all = append(all, namedSched{"ASAP", asap})
			alap, err := core.ALAP(in.Inst, T)
			if err != nil {
				t.Fatal(err)
			}
			all = append(all, namedSched{"ALAP", alap})
			for _, opt := range core.AllVariants() {
				s, _, err := core.Run(context.Background(), in.Inst, in.Prof, opt)
				if err != nil {
					t.Fatal(err)
				}
				all = append(all, namedSched{opt.Name(), s})
			}
			mg, err := core.GreedyMarginal(context.Background(), in.Inst, in.Prof, core.Options{Score: core.ScorePressureW}, nil)
			if err != nil {
				t.Fatal(err)
			}
			all = append(all, namedSched{"marginal", mg})
			ann := mg.Clone()
			core.Anneal(context.Background(), in.Inst, in.Prof, ann, core.AnnealOptions{Seed: 1, Iterations: 2000})
			all = append(all, namedSched{"marginal+anneal", ann})

			for _, ns := range all {
				if err := schedule.Validate(in.Inst, ns.s, T); err != nil {
					t.Errorf("%s: %v", ns.name, err)
				}
				// Replay must reproduce the static cost.
				res, err := sim.Replay(in.Inst, ns.s, in.Prof)
				if err != nil {
					t.Fatalf("%s: replay: %v", ns.name, err)
				}
				if res.Cost != schedule.CarbonCost(in.Inst, ns.s, in.Prof) {
					t.Errorf("%s: replay cost %d != static cost", ns.name, res.Cost)
				}
			}
		})
	}
}

func TestIntegrationNoHeuristicBeatsOptimum(t *testing.T) {
	// Tiny instances where the branch-and-bound optimum is computable.
	for _, fam := range wfgen.Families() {
		fam := fam
		t.Run(fmt.Sprint(fam), func(t *testing.T) {
			spec := experiments.Spec{
				Family: fam, N: 7, Cluster: experiments.Small,
				Scenario: power.S3, DeadlineFactor: 2, Seed: 13,
			}
			in, err := experiments.BuildInstance(spec)
			if err != nil {
				t.Fatal(err)
			}
			_, opt, err := exact.Solve(context.Background(), in.Inst, in.Prof, exact.Options{MaxNodes: 20_000_000})
			if err != nil {
				t.Fatal(err)
			}
			check := func(name string, s *schedule.Schedule) {
				if c := schedule.CarbonCost(in.Inst, s, in.Prof); c < opt {
					t.Errorf("%s cost %d beats optimum %d", name, c, opt)
				}
			}
			check("ASAP", core.ASAP(in.Inst))
			alap, err := core.ALAP(in.Inst, in.Prof.T())
			if err != nil {
				t.Fatal(err)
			}
			check("ALAP", alap)
			for _, o := range core.AllVariants() {
				s, _, err := core.Run(context.Background(), in.Inst, in.Prof, o)
				if err != nil {
					t.Fatal(err)
				}
				check(o.Name(), s)
			}
			mg, err := core.GreedyMarginal(context.Background(), in.Inst, in.Prof, core.Options{Score: core.ScoreSlackW}, nil)
			if err != nil {
				t.Fatal(err)
			}
			check("marginal", mg)
		})
	}
}

func TestIntegrationDPAgreesWithExactOnChains(t *testing.T) {
	// Build a single-processor chain through the public API and compare
	// the DP optimum with the branch-and-bound optimum.
	wf := cawosched.NewWorkflow(5)
	weights := []int64{2, 3, 1, 2, 2}
	for i, w := range weights {
		wf.SetWeight(i, w)
		if i > 0 {
			wf.AddEdge(i-1, i, 1)
		}
	}
	cluster := cawosched.NewCluster([]cawosched.ProcType{
		{Name: "U", Speed: 1, Idle: 2, Work: 5},
	}, []int{1}, 1)
	inst, err := cawosched.BuildInstance(wf, &cawosched.Mapping{
		Proc:   []int{0, 0, 0, 0, 0},
		Order:  [][]int{{0, 1, 2, 3, 4}},
		Finish: []int64{2, 5, 6, 8, 10},
	}, cluster)
	if err != nil {
		t.Fatal(err)
	}
	prof, err := power.Generate(power.S1, 25, 5, 0, 8, rng.New(99))
	if err != nil {
		t.Fatal(err)
	}
	res, err := dp.Solve(&dp.Problem{Dur: weights, Idle: 2, Work: 5, Prof: prof})
	if err != nil {
		t.Fatal(err)
	}
	_, bb, err := exact.Solve(context.Background(), inst, prof, exact.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Cost != bb {
		t.Errorf("DP optimum %d != branch-and-bound optimum %d", res.Cost, bb)
	}
}
