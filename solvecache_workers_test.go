package cawosched_test

import (
	"context"
	"testing"

	cawosched "repro"
)

// TestSearchWorkersDoNotForkCacheKeys pins the cache-hygiene half of the
// parallel-search contract: SearchWorkers is pure mechanism, so requests
// that differ only in worker count (via Request.SearchWorkers or
// Options.SearchWorkers) must share one solve-cache entry, with hit/miss
// accounting identical to repeating the same request verbatim.
func TestSearchWorkersDoNotForkCacheKeys(t *testing.T) {
	wf, err := cawosched.GenerateWorkflow(cawosched.Methylseq, 60, 13)
	if err != nil {
		t.Fatal(err)
	}
	solver := cawosched.NewSolver(cawosched.SmallCluster(13))

	first, err := solver.Solve(context.Background(), cawosched.Request{
		Workflow: wf, Variant: "pressWR-LS", Scenario: cawosched.S1, Seed: 13, SearchWorkers: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if first.CacheHit {
		t.Fatal("first solve reported a response-cache hit")
	}

	lsOpts := func(workers int) *cawosched.Options {
		return &cawosched.Options{
			Score: cawosched.ScorePressureW, Refined: true, LocalSearch: true,
			SearchWorkers: workers,
		}
	}
	table := []struct {
		name string
		req  cawosched.Request
	}{
		{"sequential", cawosched.Request{Workflow: wf, Variant: "pressWR-LS", Scenario: cawosched.S1, Seed: 13}},
		{"one-worker", cawosched.Request{Workflow: wf, Variant: "pressWR-LS", Scenario: cawosched.S1, Seed: 13, SearchWorkers: 1}},
		{"many-workers", cawosched.Request{Workflow: wf, Variant: "pressWR-LS", Scenario: cawosched.S1, Seed: 13, SearchWorkers: 16}},
		{"options-workers", cawosched.Request{Workflow: wf, Options: lsOpts(8), Scenario: cawosched.S1, Seed: 13}},
		{"both-set", cawosched.Request{Workflow: wf, Options: lsOpts(2), Scenario: cawosched.S1, Seed: 13, SearchWorkers: 32}},
	}
	for _, tc := range table {
		res, err := solver.Solve(context.Background(), tc.req)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if !res.CacheHit {
			t.Errorf("%s: missed the cache entry written by the workers=4 solve", tc.name)
		}
		if res.Cost != first.Cost || res.Deadline != first.Deadline {
			t.Errorf("%s: response differs from first solve: cost %d/%d deadline %d/%d",
				tc.name, res.Cost, first.Cost, res.Deadline, first.Deadline)
		}
	}
	if st := solver.Stats(); st.SolveMisses != 1 || st.SolveHits != int64(len(table)) || st.SolveEntries != 1 {
		t.Errorf("stats = %+v, want 1 miss, %d hits, 1 entry", st, len(table))
	}

	// Same property through the map-search pipeline, whose candidate
	// fan-out is the second pool SearchWorkers bounds.
	ms, err := solver.Solve(context.Background(), cawosched.Request{
		Workflow: wf, Variant: "pressWR-LS", Scenario: cawosched.S1, Seed: 13,
		MapSearch: true, SearchWorkers: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if ms.CacheHit {
		t.Fatal("map-search solve wrongly hit the fixed-mapping cache entry")
	}
	msAgain, err := solver.Solve(context.Background(), cawosched.Request{
		Workflow: wf, Variant: "pressWR-LS", Scenario: cawosched.S1, Seed: 13, MapSearch: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !msAgain.CacheHit {
		t.Error("sequential map-search request missed the workers=4 map-search entry")
	}
	if msAgain.Cost != ms.Cost || msAgain.Mapping != ms.Mapping {
		t.Errorf("cached map-search response differs: cost %d/%d mapping %q/%q",
			msAgain.Cost, ms.Cost, msAgain.Mapping, ms.Mapping)
	}
	if st := solver.Stats(); st.SolveMisses != 2 || st.SolveEntries != 2 {
		t.Errorf("stats after map-search = %+v, want 2 misses, 2 entries", st)
	}
}
