package cawosched_test

import (
	"context"
	"testing"

	cawosched "repro"
)

// TestSolverZoneRequestPipeline drives the full zone-aware pipeline: on a
// 2-zone cluster a plain scenario request generates one profile per zone,
// the response carries per-zone supply and a cost that matches the
// zone-aware evaluator, and identical requests hit the solve cache.
func TestSolverZoneRequestPipeline(t *testing.T) {
	wf, err := cawosched.GenerateWorkflow(cawosched.Bacass, 50, 3)
	if err != nil {
		t.Fatal(err)
	}
	solver := cawosched.NewSolver(cawosched.SmallZonedCluster(3, 2))
	req := cawosched.Request{
		Workflow:      wf,
		ZoneScenarios: []cawosched.Scenario{cawosched.S1, cawosched.S2},
		Seed:          3,
	}
	res, err := solver.Solve(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if res.Zones == nil || res.Zones.NumZones() != 2 {
		t.Fatalf("response zones = %v", res.Zones)
	}
	if res.Profile != nil {
		t.Error("multi-zone response still carries a cluster-wide profile")
	}
	if got := cawosched.CarbonCostZones(res.Instance, res.Schedule, res.Zones); got != res.Cost {
		t.Errorf("cost %d != zone evaluation %d", res.Cost, got)
	}
	bz := cawosched.CostBreakdownZones(res.Instance, res.Schedule, res.Zones)
	var sum int64
	for _, z := range bz {
		sum += z.Cost
	}
	if sum != res.Cost {
		t.Errorf("breakdown sum %d != cost %d", sum, res.Cost)
	}
	if err := cawosched.Validate(res.Instance, res.Schedule, res.Deadline); err != nil {
		t.Error(err)
	}

	again, err := solver.Solve(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if !again.CacheHit || again.Cost != res.Cost {
		t.Errorf("repeat solve: hit=%v cost %d vs %d", again.CacheHit, again.Cost, res.Cost)
	}
	if st := solver.Stats(); st.SolveHits != 1 {
		t.Errorf("SolveHits = %d, want 1", st.SolveHits)
	}

	// A different zone scenario assignment is a different cache identity.
	req.ZoneScenarios = []cawosched.Scenario{cawosched.S2, cawosched.S1}
	other, err := solver.Solve(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if other.CacheHit {
		t.Error("swapped zone scenarios served from cache")
	}
}

// TestSolveCacheZoneDigestPinsLegacy is the cache-digest half of the
// equivalence pin: a request wrapping the profile in a degenerate
// single-zone set keys identically to the legacy bare-profile request, so
// the second one is a cache hit with the identical schedule.
func TestSolveCacheZoneDigestPinsLegacy(t *testing.T) {
	wf, err := cawosched.GenerateWorkflow(cawosched.Eager, 40, 5)
	if err != nil {
		t.Fatal(err)
	}
	solver := cawosched.NewSolver(cawosched.SmallCluster(5))
	inst, _, err := solver.Plan(context.Background(), wf)
	if err != nil {
		t.Fatal(err)
	}
	D := cawosched.ASAPMakespan(inst)
	prof, err := cawosched.ProfileForInstance(inst, cawosched.S3, 2*D, 24, 5)
	if err != nil {
		t.Fatal(err)
	}

	legacy, err := solver.Solve(context.Background(), cawosched.Request{Workflow: wf, Profile: prof})
	if err != nil {
		t.Fatal(err)
	}
	if legacy.CacheHit {
		t.Fatal("first solve was a cache hit")
	}
	wrapped, err := solver.Solve(context.Background(), cawosched.Request{
		Workflow: wf,
		Zones:    cawosched.SingleZone(prof),
	})
	if err != nil {
		t.Fatal(err)
	}
	if !wrapped.CacheHit {
		t.Error("SingleZone-wrapped request missed the cache entry of the bare-profile request")
	}
	for v := range legacy.Schedule.Start {
		if legacy.Schedule.Start[v] != wrapped.Schedule.Start[v] {
			t.Fatalf("node %d: schedules differ between legacy and wrapped requests", v)
		}
	}
	if legacy.Cost != wrapped.Cost {
		t.Errorf("costs differ: %d vs %d", legacy.Cost, wrapped.Cost)
	}
}

// TestSolverRejectsMismatchedZones: explicit zones must match the
// cluster's zone count.
func TestSolverRejectsMismatchedZones(t *testing.T) {
	wf, err := cawosched.GenerateWorkflow(cawosched.Atacseq, 30, 2)
	if err != nil {
		t.Fatal(err)
	}
	solver := cawosched.NewSolver(cawosched.SmallZonedCluster(2, 3))
	prof := cawosched.ConstantProfile(10_000, 1_000)
	zs, err := cawosched.NewZoneSet(
		cawosched.Zone{Name: "a", Profile: prof},
		cawosched.Zone{Name: "b", Profile: prof.Clone()},
	)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := solver.Solve(context.Background(), cawosched.Request{Workflow: wf, Zones: zs}); err == nil {
		t.Error("2-zone supply accepted on a 3-zone cluster")
	}
	if _, err := solver.Solve(context.Background(), cawosched.Request{
		Workflow:      wf,
		ZoneScenarios: []cawosched.Scenario{cawosched.S1},
	}); err == nil {
		t.Error("1 zone scenario accepted on a 3-zone cluster")
	}
}

// TestZonesForInstancePerZoneCorridor: generated per-zone profiles stay
// inside their zone's own corridor, and a 1-zone cluster reproduces the
// legacy ProfileForInstance generation bit for bit.
func TestZonesForInstancePerZoneCorridor(t *testing.T) {
	wf, err := cawosched.GenerateWorkflow(cawosched.Methylseq, 60, 4)
	if err != nil {
		t.Fatal(err)
	}
	inst, err := cawosched.PlanHEFT(wf, cawosched.SmallZonedCluster(4, 2))
	if err != nil {
		t.Fatal(err)
	}
	D := cawosched.ASAPMakespan(inst)
	zs, err := cawosched.ZonesForInstance(inst, []cawosched.Scenario{cawosched.S1, cawosched.S2}, 2*D, 24, 4)
	if err != nil {
		t.Fatal(err)
	}
	for z := 0; z < zs.NumZones(); z++ {
		lo := inst.ZoneIdlePower(z)
		for _, iv := range zs.Profile(z).Intervals {
			if iv.Budget < lo {
				t.Errorf("zone %d budget %d below the zone idle floor %d", z, iv.Budget, lo)
			}
		}
	}

	single, err := cawosched.PlanHEFT(wf, cawosched.SmallCluster(4))
	if err != nil {
		t.Fatal(err)
	}
	solver := cawosched.NewSolver(cawosched.SmallCluster(4))
	req := cawosched.Request{Workflow: wf, Scenario: cawosched.S2, Seed: 11}
	generated, err := solver.ZonesFor(context.Background(), single, req)
	if err != nil {
		t.Fatal(err)
	}
	legacy, err := solver.ProfileFor(context.Background(), single, req)
	if err != nil {
		t.Fatal(err)
	}
	if !generated.Single() || !generated.Profile(0).EqualProfile(legacy) {
		t.Error("1-zone generation differs from the legacy profile generation")
	}
	if generated.Digest() != legacy.Digest() {
		t.Error("1-zone generation digest differs from the legacy profile digest")
	}
}
